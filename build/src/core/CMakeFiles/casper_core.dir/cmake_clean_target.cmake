file(REMOVE_RECURSE
  "libcasper_core.a"
)
