file(REMOVE_RECURSE
  "libcasper_ga.a"
)
