file(REMOVE_RECURSE
  "CMakeFiles/casper_ga.dir/global_array.cpp.o"
  "CMakeFiles/casper_ga.dir/global_array.cpp.o.d"
  "libcasper_ga.a"
  "libcasper_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
