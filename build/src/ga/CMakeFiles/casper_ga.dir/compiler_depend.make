# Empty compiler generated dependencies file for casper_ga.
# This may be replaced when dependencies are built.
