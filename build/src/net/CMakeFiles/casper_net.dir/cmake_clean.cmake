file(REMOVE_RECURSE
  "CMakeFiles/casper_net.dir/profile.cpp.o"
  "CMakeFiles/casper_net.dir/profile.cpp.o.d"
  "libcasper_net.a"
  "libcasper_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
