# Empty dependencies file for casper_net.
# This may be replaced when dependencies are built.
