file(REMOVE_RECURSE
  "libcasper_net.a"
)
