# Empty compiler generated dependencies file for casper_sim.
# This may be replaced when dependencies are built.
