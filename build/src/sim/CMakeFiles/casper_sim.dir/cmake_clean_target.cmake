file(REMOVE_RECURSE
  "libcasper_sim.a"
)
