file(REMOVE_RECURSE
  "CMakeFiles/casper_sim.dir/engine.cpp.o"
  "CMakeFiles/casper_sim.dir/engine.cpp.o.d"
  "CMakeFiles/casper_sim.dir/fiber.cpp.o"
  "CMakeFiles/casper_sim.dir/fiber.cpp.o.d"
  "libcasper_sim.a"
  "libcasper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
