file(REMOVE_RECURSE
  "CMakeFiles/casper_ccsd.dir/ccsd.cpp.o"
  "CMakeFiles/casper_ccsd.dir/ccsd.cpp.o.d"
  "libcasper_ccsd.a"
  "libcasper_ccsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_ccsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
