# Empty dependencies file for casper_ccsd.
# This may be replaced when dependencies are built.
