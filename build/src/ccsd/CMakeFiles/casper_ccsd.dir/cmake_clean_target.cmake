file(REMOVE_RECURSE
  "libcasper_ccsd.a"
)
