file(REMOVE_RECURSE
  "libcasper_report.a"
)
