file(REMOVE_RECURSE
  "CMakeFiles/casper_report.dir/table.cpp.o"
  "CMakeFiles/casper_report.dir/table.cpp.o.d"
  "libcasper_report.a"
  "libcasper_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
