# Empty dependencies file for casper_report.
# This may be replaced when dependencies are built.
