# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_basic[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_rma[1]_include.cmake")
include("/root/repo/build/tests/test_casper[1]_include.cmake")
include("/root/repo/build/tests/test_ga[1]_include.cmake")
include("/root/repo/build/tests/test_progress_agents[1]_include.cmake")
include("/root/repo/build/tests/test_casper_bindings[1]_include.cmake")
include("/root/repo/build/tests/test_atomicity_hazard[1]_include.cmake")
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_casper_epochs[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_nonblocking[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_corners[1]_include.cmake")
