file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_basic.dir/test_mpi_basic.cpp.o"
  "CMakeFiles/test_mpi_basic.dir/test_mpi_basic.cpp.o.d"
  "test_mpi_basic"
  "test_mpi_basic.pdb"
  "test_mpi_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
