# Empty dependencies file for test_mpi_basic.
# This may be replaced when dependencies are built.
