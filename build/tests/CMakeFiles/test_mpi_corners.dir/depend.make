# Empty dependencies file for test_mpi_corners.
# This may be replaced when dependencies are built.
