file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_corners.dir/test_mpi_corners.cpp.o"
  "CMakeFiles/test_mpi_corners.dir/test_mpi_corners.cpp.o.d"
  "test_mpi_corners"
  "test_mpi_corners.pdb"
  "test_mpi_corners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
