# Empty dependencies file for test_casper_epochs.
# This may be replaced when dependencies are built.
