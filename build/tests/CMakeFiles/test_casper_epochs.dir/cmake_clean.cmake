file(REMOVE_RECURSE
  "CMakeFiles/test_casper_epochs.dir/test_casper_epochs.cpp.o"
  "CMakeFiles/test_casper_epochs.dir/test_casper_epochs.cpp.o.d"
  "test_casper_epochs"
  "test_casper_epochs.pdb"
  "test_casper_epochs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_casper_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
