file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_nonblocking.dir/test_mpi_nonblocking.cpp.o"
  "CMakeFiles/test_mpi_nonblocking.dir/test_mpi_nonblocking.cpp.o.d"
  "test_mpi_nonblocking"
  "test_mpi_nonblocking.pdb"
  "test_mpi_nonblocking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
