# Empty dependencies file for test_mpi_nonblocking.
# This may be replaced when dependencies are built.
