# Empty dependencies file for test_progress_agents.
# This may be replaced when dependencies are built.
