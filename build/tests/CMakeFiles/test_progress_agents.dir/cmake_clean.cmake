file(REMOVE_RECURSE
  "CMakeFiles/test_progress_agents.dir/test_progress_agents.cpp.o"
  "CMakeFiles/test_progress_agents.dir/test_progress_agents.cpp.o.d"
  "test_progress_agents"
  "test_progress_agents.pdb"
  "test_progress_agents[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_progress_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
