# Empty dependencies file for test_sim_fiber.
# This may be replaced when dependencies are built.
