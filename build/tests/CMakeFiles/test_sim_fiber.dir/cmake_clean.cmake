file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fiber.dir/test_sim_fiber.cpp.o"
  "CMakeFiles/test_sim_fiber.dir/test_sim_fiber.cpp.o.d"
  "test_sim_fiber"
  "test_sim_fiber.pdb"
  "test_sim_fiber[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
