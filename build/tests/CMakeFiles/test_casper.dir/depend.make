# Empty dependencies file for test_casper.
# This may be replaced when dependencies are built.
