file(REMOVE_RECURSE
  "CMakeFiles/test_casper.dir/test_casper.cpp.o"
  "CMakeFiles/test_casper.dir/test_casper.cpp.o.d"
  "test_casper"
  "test_casper.pdb"
  "test_casper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_casper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
