file(REMOVE_RECURSE
  "CMakeFiles/test_atomicity_hazard.dir/test_atomicity_hazard.cpp.o"
  "CMakeFiles/test_atomicity_hazard.dir/test_atomicity_hazard.cpp.o.d"
  "test_atomicity_hazard"
  "test_atomicity_hazard.pdb"
  "test_atomicity_hazard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomicity_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
