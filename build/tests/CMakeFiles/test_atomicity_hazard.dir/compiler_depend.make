# Empty compiler generated dependencies file for test_atomicity_hazard.
# This may be replaced when dependencies are built.
