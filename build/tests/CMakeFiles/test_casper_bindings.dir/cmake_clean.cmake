file(REMOVE_RECURSE
  "CMakeFiles/test_casper_bindings.dir/test_casper_bindings.cpp.o"
  "CMakeFiles/test_casper_bindings.dir/test_casper_bindings.cpp.o.d"
  "test_casper_bindings"
  "test_casper_bindings.pdb"
  "test_casper_bindings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_casper_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
