# Empty dependencies file for test_casper_bindings.
# This may be replaced when dependencies are built.
