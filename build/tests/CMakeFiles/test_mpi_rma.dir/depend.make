# Empty dependencies file for test_mpi_rma.
# This may be replaced when dependencies are built.
