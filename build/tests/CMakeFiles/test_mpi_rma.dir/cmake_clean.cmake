file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_rma.dir/test_mpi_rma.cpp.o"
  "CMakeFiles/test_mpi_rma.dir/test_mpi_rma.cpp.o.d"
  "test_mpi_rma"
  "test_mpi_rma.pdb"
  "test_mpi_rma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
