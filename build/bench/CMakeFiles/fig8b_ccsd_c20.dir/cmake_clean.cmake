file(REMOVE_RECURSE
  "CMakeFiles/fig8b_ccsd_c20.dir/fig8b_ccsd_c20.cpp.o"
  "CMakeFiles/fig8b_ccsd_c20.dir/fig8b_ccsd_c20.cpp.o.d"
  "fig8b_ccsd_c20"
  "fig8b_ccsd_c20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_ccsd_c20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
