# Empty dependencies file for fig8b_ccsd_c20.
# This may be replaced when dependencies are built.
