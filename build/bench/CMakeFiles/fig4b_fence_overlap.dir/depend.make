# Empty dependencies file for fig4b_fence_overlap.
# This may be replaced when dependencies are built.
