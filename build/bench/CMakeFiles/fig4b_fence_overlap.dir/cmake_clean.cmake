file(REMOVE_RECURSE
  "CMakeFiles/fig4b_fence_overlap.dir/fig4b_fence_overlap.cpp.o"
  "CMakeFiles/fig4b_fence_overlap.dir/fig4b_fence_overlap.cpp.o.d"
  "fig4b_fence_overlap"
  "fig4b_fence_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_fence_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
