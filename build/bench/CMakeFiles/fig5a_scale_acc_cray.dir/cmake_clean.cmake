file(REMOVE_RECURSE
  "CMakeFiles/fig5a_scale_acc_cray.dir/fig5a_scale_acc_cray.cpp.o"
  "CMakeFiles/fig5a_scale_acc_cray.dir/fig5a_scale_acc_cray.cpp.o.d"
  "fig5a_scale_acc_cray"
  "fig5a_scale_acc_cray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_scale_acc_cray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
