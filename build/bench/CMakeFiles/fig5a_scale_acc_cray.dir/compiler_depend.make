# Empty compiler generated dependencies file for fig5a_scale_acc_cray.
# This may be replaced when dependencies are built.
