# Empty compiler generated dependencies file for fig6c_segment_binding.
# This may be replaced when dependencies are built.
