file(REMOVE_RECURSE
  "CMakeFiles/fig6c_segment_binding.dir/fig6c_segment_binding.cpp.o"
  "CMakeFiles/fig6c_segment_binding.dir/fig6c_segment_binding.cpp.o.d"
  "fig6c_segment_binding"
  "fig6c_segment_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_segment_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
