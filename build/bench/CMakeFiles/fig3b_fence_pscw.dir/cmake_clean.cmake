file(REMOVE_RECURSE
  "CMakeFiles/fig3b_fence_pscw.dir/fig3b_fence_pscw.cpp.o"
  "CMakeFiles/fig3b_fence_pscw.dir/fig3b_fence_pscw.cpp.o.d"
  "fig3b_fence_pscw"
  "fig3b_fence_pscw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_fence_pscw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
