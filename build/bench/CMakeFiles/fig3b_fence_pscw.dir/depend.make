# Empty dependencies file for fig3b_fence_pscw.
# This may be replaced when dependencies are built.
