file(REMOVE_RECURSE
  "CMakeFiles/fig4c_dmapp_interrupts.dir/fig4c_dmapp_interrupts.cpp.o"
  "CMakeFiles/fig4c_dmapp_interrupts.dir/fig4c_dmapp_interrupts.cpp.o.d"
  "fig4c_dmapp_interrupts"
  "fig4c_dmapp_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_dmapp_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
