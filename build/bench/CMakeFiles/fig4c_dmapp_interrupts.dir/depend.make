# Empty dependencies file for fig4c_dmapp_interrupts.
# This may be replaced when dependencies are built.
