file(REMOVE_RECURSE
  "CMakeFiles/fig6a_rank_binding_procs.dir/fig6a_rank_binding_procs.cpp.o"
  "CMakeFiles/fig6a_rank_binding_procs.dir/fig6a_rank_binding_procs.cpp.o.d"
  "fig6a_rank_binding_procs"
  "fig6a_rank_binding_procs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_rank_binding_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
