# Empty dependencies file for fig6a_rank_binding_procs.
# This may be replaced when dependencies are built.
