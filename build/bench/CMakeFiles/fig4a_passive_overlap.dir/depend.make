# Empty dependencies file for fig4a_passive_overlap.
# This may be replaced when dependencies are built.
