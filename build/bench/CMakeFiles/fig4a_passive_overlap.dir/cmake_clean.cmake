file(REMOVE_RECURSE
  "CMakeFiles/fig4a_passive_overlap.dir/fig4a_passive_overlap.cpp.o"
  "CMakeFiles/fig4a_passive_overlap.dir/fig4a_passive_overlap.cpp.o.d"
  "fig4a_passive_overlap"
  "fig4a_passive_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_passive_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
