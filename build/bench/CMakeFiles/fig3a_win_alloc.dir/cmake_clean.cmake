file(REMOVE_RECURSE
  "CMakeFiles/fig3a_win_alloc.dir/fig3a_win_alloc.cpp.o"
  "CMakeFiles/fig3a_win_alloc.dir/fig3a_win_alloc.cpp.o.d"
  "fig3a_win_alloc"
  "fig3a_win_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_win_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
