# Empty compiler generated dependencies file for fig3a_win_alloc.
# This may be replaced when dependencies are built.
