# Empty compiler generated dependencies file for fig5b_scale_put_cray.
# This may be replaced when dependencies are built.
