file(REMOVE_RECURSE
  "CMakeFiles/fig5b_scale_put_cray.dir/fig5b_scale_put_cray.cpp.o"
  "CMakeFiles/fig5b_scale_put_cray.dir/fig5b_scale_put_cray.cpp.o.d"
  "fig5b_scale_put_cray"
  "fig5b_scale_put_cray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_scale_put_cray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
