file(REMOVE_RECURSE
  "CMakeFiles/fig8a_ccsd_w16.dir/fig8a_ccsd_w16.cpp.o"
  "CMakeFiles/fig8a_ccsd_w16.dir/fig8a_ccsd_w16.cpp.o.d"
  "fig8a_ccsd_w16"
  "fig8a_ccsd_w16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_ccsd_w16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
