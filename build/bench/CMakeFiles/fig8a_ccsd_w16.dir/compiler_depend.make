# Empty compiler generated dependencies file for fig8a_ccsd_w16.
# This may be replaced when dependencies are built.
