file(REMOVE_RECURSE
  "CMakeFiles/fig6b_rank_binding_ops.dir/fig6b_rank_binding_ops.cpp.o"
  "CMakeFiles/fig6b_rank_binding_ops.dir/fig6b_rank_binding_ops.cpp.o.d"
  "fig6b_rank_binding_ops"
  "fig6b_rank_binding_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_rank_binding_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
