# Empty dependencies file for fig6b_rank_binding_ops.
# This may be replaced when dependencies are built.
