# Empty dependencies file for fig7a_dynamic_random.
# This may be replaced when dependencies are built.
