file(REMOVE_RECURSE
  "CMakeFiles/fig7a_dynamic_random.dir/fig7a_dynamic_random.cpp.o"
  "CMakeFiles/fig7a_dynamic_random.dir/fig7a_dynamic_random.cpp.o.d"
  "fig7a_dynamic_random"
  "fig7a_dynamic_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_dynamic_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
