file(REMOVE_RECURSE
  "CMakeFiles/fig7b_dynamic_opcount.dir/fig7b_dynamic_opcount.cpp.o"
  "CMakeFiles/fig7b_dynamic_opcount.dir/fig7b_dynamic_opcount.cpp.o.d"
  "fig7b_dynamic_opcount"
  "fig7b_dynamic_opcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_dynamic_opcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
