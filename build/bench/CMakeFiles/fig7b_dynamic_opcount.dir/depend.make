# Empty dependencies file for fig7b_dynamic_opcount.
# This may be replaced when dependencies are built.
