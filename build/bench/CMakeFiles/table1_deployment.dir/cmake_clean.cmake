file(REMOVE_RECURSE
  "CMakeFiles/table1_deployment.dir/table1_deployment.cpp.o"
  "CMakeFiles/table1_deployment.dir/table1_deployment.cpp.o.d"
  "table1_deployment"
  "table1_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
