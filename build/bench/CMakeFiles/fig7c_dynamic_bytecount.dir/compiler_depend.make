# Empty compiler generated dependencies file for fig7c_dynamic_bytecount.
# This may be replaced when dependencies are built.
