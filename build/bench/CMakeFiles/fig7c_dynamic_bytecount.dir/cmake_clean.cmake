file(REMOVE_RECURSE
  "CMakeFiles/fig7c_dynamic_bytecount.dir/fig7c_dynamic_bytecount.cpp.o"
  "CMakeFiles/fig7c_dynamic_bytecount.dir/fig7c_dynamic_bytecount.cpp.o.d"
  "fig7c_dynamic_bytecount"
  "fig7c_dynamic_bytecount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_dynamic_bytecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
