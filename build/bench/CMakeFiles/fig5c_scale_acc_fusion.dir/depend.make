# Empty dependencies file for fig5c_scale_acc_fusion.
# This may be replaced when dependencies are built.
