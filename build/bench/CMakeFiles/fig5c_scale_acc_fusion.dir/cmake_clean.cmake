file(REMOVE_RECURSE
  "CMakeFiles/fig5c_scale_acc_fusion.dir/fig5c_scale_acc_fusion.cpp.o"
  "CMakeFiles/fig5c_scale_acc_fusion.dir/fig5c_scale_acc_fusion.cpp.o.d"
  "fig5c_scale_acc_fusion"
  "fig5c_scale_acc_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_scale_acc_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
