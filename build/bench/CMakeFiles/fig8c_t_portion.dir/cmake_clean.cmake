file(REMOVE_RECURSE
  "CMakeFiles/fig8c_t_portion.dir/fig8c_t_portion.cpp.o"
  "CMakeFiles/fig8c_t_portion.dir/fig8c_t_portion.cpp.o.d"
  "fig8c_t_portion"
  "fig8c_t_portion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_t_portion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
