# Empty compiler generated dependencies file for fig8c_t_portion.
# This may be replaced when dependencies are built.
