// Host-side throughput of the simulator scheduler itself: rank switches/sec
// and event dispatches/sec at 16 / 256 / 1024 simulated ranks, plus a
// shard-count sweep of the sharded scheduler at 1024 ranks. Emits
// BENCH_engine.json so successive PRs have a perf trajectory for the engine
// (these are host costs, not virtual time).
//
// Every number is the best of --reps identical runs: the quantity being
// tracked is the code's cost, and min-time (max-rate) is the standard
// estimator least polluted by scheduler preemption on a shared host.
//
// Usage: engine_throughput [--out PATH] [--switches N] [--events N] [--reps N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/record.hpp"
#include "sim/engine.hpp"

using namespace casper;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename F>
double best_of(int reps, F&& run_once) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) best = std::max(best, run_once());
  return best;
}

/// All ranks repeatedly advance by 1 ns in lockstep, so every advance leaves
/// and re-enters the scheduler: 2 fiber switches per advance, nranks at a
/// time. Returns host-side switches/sec.
double measure_switch_rate(int nranks, int switches_per_rank) {
  sim::Engine::Options o;
  o.nranks = nranks;
  o.stack_bytes = 64 * 1024;
  sim::Engine e(o, [switches_per_rank](sim::Context& ctx) {
    for (int i = 0; i < switches_per_rank; ++i) ctx.advance(sim::ns(1));
  });
  const auto t0 = Clock::now();
  e.run();
  const double dt = seconds_since(t0);
  // Each slow-path advance is one switch out + one switch back in.
  const double switches =
      2.0 * static_cast<double>(nranks) * switches_per_rank;
  return switches / dt;
}

/// One designated rank posts batches of timestamp-ordered events; all other
/// ranks just finish. Returns host-side events/sec through the scheduler
/// heap + slot pool.
double measure_event_rate(int nranks, int total_events) {
  sim::Engine::Options o;
  o.nranks = nranks;
  o.stack_bytes = 64 * 1024;
  const int batches = 64;
  const int per_batch = total_events / batches;
  sim::Engine e(o, [per_batch](sim::Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < per_batch; ++i) {
        ctx.engine().post_event(ctx.now() + sim::ns(1 + i % 7), [] {});
      }
      ctx.advance(sim::ns(16));  // drain the batch
    }
  });
  const auto t0 = Clock::now();
  e.run();
  const double dt = seconds_since(t0);
  return static_cast<double>(batches) * per_batch / dt;
}

/// Shard-sweep workload: kGroups posters spread over the rank space (one per
/// contiguous 128-rank block at nranks=1024, so exactly one per shard at
/// shards=8) each post timestamp-ordered batches of events homed to
/// themselves. The workload is byte-identical for every shard count — only
/// the partitioning changes — so the shards=1 row (which runs the classic
/// single-threaded scheduler) is the honest denominator of the sharded
/// speedup gate. A generous lookahead keeps the whole run inside one
/// conservative window: this measures queue + dispatch cost, not barriers.
double measure_sharded_event_rate(int nranks, int shards, int total_events) {
  sim::Engine::Options o;
  o.nranks = nranks;
  o.stack_bytes = 64 * 1024;
  o.shards = shards;
  o.lookahead = sim::us(1000);
  const int groups = 8;
  const int batches = 64;
  const int per_batch = total_events / batches;
  const int stride = nranks / groups;
  sim::Engine e(o, [per_batch, stride](sim::Context& ctx) {
    if (ctx.rank() % stride != 0) return;
    const int self = ctx.rank();
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < per_batch; ++i) {
        ctx.engine().post_event(ctx.now() + sim::ns(1 + i % 7), self, [] {});
      }
      ctx.advance(sim::ns(16));  // drain the batch
    }
  });
  const auto t0 = Clock::now();
  e.run();
  const double dt = seconds_since(t0);
  return static_cast<double>(groups) * batches * per_batch / dt;
}

/// Small instrumented run (Recorder attached as the scheduler observer) so
/// the emitted JSON carries an obs metrics block like the other benches.
/// Separate from the timed loops above — those always run uninstrumented.
void collect_obs_metrics(obs::Metrics* out) {
  obs::Recorder rec;
  sim::Engine::Options o;
  o.nranks = 16;
  o.stack_bytes = 64 * 1024;
  sim::Engine e(o, [](sim::Context& ctx) {
    for (int i = 0; i < 64; ++i) ctx.advance(sim::ns(1));
  });
  e.set_sched_observer(&rec);
  e.run();
  rec.metrics().counter("sched.observed_switches") = rec.trace().recorded();
  rec.metrics().counter("sched.trace_dropped") = rec.trace().dropped();
  *out = rec.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_engine.json";
  int switches_per_rank = 2000;
  int total_events = 200000;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--switches") == 0 && i + 1 < argc) {
      switches_per_rank = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      total_events = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    }
  }

  const std::vector<int> rank_counts = {16, 256, 1024};
  std::string json = "{\n  \"bench\": \"engine_throughput\",\n"
                     "  \"scheduler\": \"fiber\",\n";
  {
    char line[64];
    std::snprintf(line, sizeof line, "  \"host_cpus\": %u,\n",
                  std::thread::hardware_concurrency());
    json += line;
  }
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < rank_counts.size(); ++i) {
    const int n = rank_counts[i];
    const double sw = best_of(
        reps, [&] { return measure_switch_rate(n, switches_per_rank); });
    const double ev =
        best_of(reps, [&] { return measure_event_rate(n, total_events); });
    std::printf("nranks=%4d  switches/sec=%.3e  events/sec=%.3e\n", n, sw, ev);
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"nranks\": %d, \"switches_per_sec\": %.1f, "
                  "\"events_per_sec\": %.1f}%s\n",
                  n, sw, ev, i + 1 < rank_counts.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";

  // Shard-count sweep at the largest rank count. shards=1 is the classic
  // scheduler; the ISSUE gate is events_per_sec(shards>=4) >= 2.5x that row.
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  json += "  \"shard_sweep\": [\n";
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    const int s = shard_counts[i];
    const double ev = best_of(reps, [&] {
      return measure_sharded_event_rate(1024, s, total_events);
    });
    std::printf("nranks=1024  shards=%d  events/sec=%.3e\n", s, ev);
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"nranks\": 1024, \"shards\": %d, "
                  "\"events_per_sec\": %.1f}%s\n",
                  s, ev, i + 1 < shard_counts.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";
  // PR 2 numbers (pre-observability scheduler), kept verbatim so the
  // trajectory across PRs stays in the file after regeneration.
  json +=
      "  \"baseline_pr2\": [\n"
      "    {\"nranks\": 16, \"switches_per_sec\": 4548074.5, "
      "\"events_per_sec\": 13784128.6},\n"
      "    {\"nranks\": 256, \"switches_per_sec\": 3703914.0, "
      "\"events_per_sec\": 8853851.2},\n"
      "    {\"nranks\": 1024, \"switches_per_sec\": 3091760.6, "
      "\"events_per_sec\": 8423524.0}\n"
      "  ],\n";
  obs::Metrics metrics;
  collect_obs_metrics(&metrics);
  std::ostringstream ms;
  ms << "  \"metrics\": ";
  metrics.write_json(ms, 2);
  json += ms.str();
  json += "\n}\n";

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "engine_throughput: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
