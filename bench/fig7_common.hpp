// Shared workload for Fig. 7: dynamic load balancing under lockall with hot
// node-master targets.
//
// Every process performs a lockall - (ops) - unlockall pattern over all
// other processes. Node masters (local rank 0 in the paper) receive
// `hot_ops` operations of `hot_elems` doubles; every other target receives
// one single-double operation. `with_acc` issues an ACCUMULATE+PUT pair
// (accumulates always follow static binding; puts may be dynamically
// balanced), otherwise PUT only.
#pragma once

#include <vector>

#include "common.hpp"

namespace casper::bench {

inline double fig7_uneven_us(const RunSpec& spec, int hot_ops, int hot_elems,
                             bool with_acc, bool round_barriers = false) {
  return run_metric(spec, [hot_ops, hot_elems, with_acc,
                           round_barriers](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    const auto& topo = env.runtime().topo();
    const int users_per_node = p / topo.nodes;

    void* base = nullptr;
    mpi::Win win = env.win_allocate(
        static_cast<std::size_t>(hot_elems) * sizeof(double), sizeof(double),
        mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time t0 = env.now();
    std::vector<double> v(static_cast<std::size_t>(hot_elems), 1.0);
    // `hot_ops` rounds over all targets: node masters get a hot-sized
    // operation every round, everyone else a single double in round 0 only.
    // Interleaving hot and cold operations is what distinguishes the
    // counting policies (a count-balanced ghost can be byte-overloaded).
    for (int k = 0; k < hot_ops; ++k) {
      for (int t = 0; t < p; ++t) {
        if (t == me) continue;
        const bool hot = (t % users_per_node) == 0;
        if (!hot && k > 0) continue;
        const int elems = hot ? hot_elems : 1;
        if (with_acc) {
          env.accumulate(v.data(), elems, t, 0, mpi::AccOp::Sum, win);
        }
        env.put(v.data(), elems, t, 0, win);
      }
      if (round_barriers && k + 1 < hot_ops) {
        // Adaptive series: complete the round and give the online
        // controller an epoch boundary to adapt at. The extra sync cost is
        // charged to the adaptive series (it is part of adapting).
        env.win_flush_all(win);
        env.barrier(w);
      }
    }
    env.win_flush_all(win);
    env.barrier(w);
    const double us = sim::to_us(env.now() - t0);
    double us_max = 0;
    env.allreduce(&us, &us_max, 1, mpi::Dt::Double, mpi::AccOp::Max, w);
    env.win_unlock_all(win);
    if (me == 0) *out = us_max;
    env.win_free(win);
  });
}

/// Spec for one dynamic-binding series on the Fig. 7 cluster.
inline RunSpec fig7_spec(core::DynamicLb lb, int nodes, int users_per_node,
                         int ghosts) {
  RunSpec s;
  s.mode = Mode::Casper;
  s.profile = net::cray_xc30_regular();
  s.nodes = nodes;
  s.user_cpn = users_per_node;
  s.ghosts = ghosts;
  s.binding = core::Binding::Rank;
  s.dynamic = lb;
  return s;
}

/// The `--adaptive` series (see DESIGN.md §15): same cluster, starting from
/// the random policy so the online controller may switch to the counting
/// policy the workload actually rewards, at per-round epoch boundaries.
inline RunSpec fig7_adaptive_spec(int nodes, int users_per_node, int ghosts) {
  RunSpec s = fig7_spec(core::DynamicLb::Random, nodes, users_per_node,
                        ghosts);
  s.adaptive.enabled = true;
  return s;
}

}  // namespace casper::bench
