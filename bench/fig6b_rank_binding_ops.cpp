// Fig. 6(b): static rank binding with increasing operation count at a fixed
// 32 user processes (2 nodes x 16): each process sends n accumulates to
// every other process. More ghosts win once n exceeds ~8.
#include <iostream>

#include "fig6_common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "Fig 6(b)",
                 "static rank binding, increasing ops "
                 "(32 users on 2 nodes, n accs to every peer)");

  report::Table t({"ops", "original(ms)", "casper_2g(ms)", "casper_4g(ms)",
                   "casper_8g(ms)", "speedup_8g"});
  const int max_ops = full ? 512 : 128;
  for (int ops = 1; ops <= max_ops; ops *= 2) {
    auto spec = [&](Mode m, int ghosts) {
      RunSpec s;
      s.mode = m;
      s.profile = net::cray_xc30_regular();
      s.nodes = 2;
      s.user_cpn = 16;  // 16 users per node; ghosts are extra cores
      s.ghosts = ghosts;
      s.binding = core::Binding::Rank;
      return s;
    };
    const double orig =
        bench::fig6_alltoall_acc_us(spec(Mode::Original, 0), ops);
    const double g2 = bench::fig6_alltoall_acc_us(spec(Mode::Casper, 2), ops);
    const double g4 = bench::fig6_alltoall_acc_us(spec(Mode::Casper, 4), ops);
    const double g8 = bench::fig6_alltoall_acc_us(spec(Mode::Casper, 8), ops);
    t.row({report::fmt_count(static_cast<std::uint64_t>(ops)),
           report::fmt(orig / 1000.0, 2), report::fmt(g2 / 1000.0, 2),
           report::fmt(g4 / 1000.0, 2), report::fmt(g8 / 1000.0, 2),
           report::fmt(orig / g8, 2)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: more ghost processes benefit once the per-pair "
               "operation count grows past ~8.\n";
  if (!full) std::cout << "(reduced scale; pass --full for up to 512 ops)\n";
  return 0;
}
