// Shared workloads for Fig. 6: load balancing across multiple ghost
// processes with static bindings.
#pragma once

#include "common.hpp"

namespace casper::bench {

/// Fig. 6(a)/(b) workload: every process sends `ops` accumulate messages
/// (one double each) to every other process under lockall; returns the
/// average total exchange time in us (max over ranks).
inline double fig6_alltoall_acc_us(const RunSpec& spec, int ops) {
  return run_metric(spec, [ops](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(
        static_cast<std::size_t>(p) * sizeof(double), sizeof(double),
        mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time t0 = env.now();
    double v = 1.0;
    for (int k = 0; k < ops; ++k) {
      for (int t = 0; t < p; ++t) {
        if (t == me) continue;
        env.accumulate(&v, 1, t, static_cast<std::size_t>(me),
                       mpi::AccOp::Sum, win);
      }
    }
    env.win_flush_all(win);
    env.barrier(w);
    const double us = sim::to_us(env.now() - t0);
    double us_max = 0;
    env.allreduce(&us, &us_max, 1, mpi::Dt::Double, mpi::AccOp::Max, w);
    env.win_unlock_all(win);
    if (me == 0) *out = us_max;
    env.win_free(win);
  });
}

/// Fig. 6(c) workload: the first process of every node exposes a large
/// window (`big_elems` doubles), everyone else 2 doubles; every process
/// issues `ops` accumulates to each node-master and one to everyone else.
/// Segment binding splits the hot windows between the ghosts.
inline double fig6c_uneven_acc_us(const RunSpec& spec, int ops,
                                  int big_elems) {
  return run_metric(spec, [ops, big_elems](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    // node-masters are the user ranks whose index is a multiple of the
    // per-node user count; derive it from the underlying topology.
    const auto& topo = env.runtime().topo();
    const int users_per_node = p / topo.nodes;
    const bool is_master = (me % users_per_node) == 0;

    const std::size_t my_elems =
        is_master ? static_cast<std::size_t>(big_elems) : 2;
    void* base = nullptr;
    mpi::Win win = env.win_allocate(my_elems * sizeof(double),
                                    sizeof(double), mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time t0 = env.now();
    std::vector<double> v(static_cast<std::size_t>(big_elems), 1.0);
    for (int t = 0; t < p; ++t) {
      if (t == me) continue;
      if ((t % users_per_node) == 0) {
        for (int k = 0; k < ops; ++k) {
          env.accumulate(v.data(), big_elems, t, 0, mpi::AccOp::Sum, win);
        }
      } else {
        env.accumulate(v.data(), 1, t, 0, mpi::AccOp::Sum, win);
      }
    }
    env.win_flush_all(win);
    env.barrier(w);
    const double us = sim::to_us(env.now() - t0);
    double us_max = 0;
    env.allreduce(&us, &us_max, 1, mpi::Dt::Double, mpi::AccOp::Max, w);
    env.win_unlock_all(win);
    if (me == 0) *out = us_max;
    env.win_free(win);
  });
}

}  // namespace casper::bench
