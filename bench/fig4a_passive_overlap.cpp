// Fig. 4(a): passive-target overlap — time on the origin of a
// lockall - accumulate - unlockall while the target blocks in computation,
// as a function of the target's wait time.
//
// With original MPI the origin time tracks the target's computation (the
// software accumulate waits for the target to re-enter MPI). Every
// asynchronous-progress strategy breaks that dependence; thread and DMAPP
// progress carry extra overhead relative to Casper.
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "report/json.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

double origin_time_us(const RunSpec& spec, sim::Time wait) {
  return bench::run_metric(spec, [wait](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    const int iters = 16;
    double total = 0;
    for (int it = 0; it < iters; ++it) {
      env.barrier(w);
      if (env.rank(w) == 0) {
        const sim::Time t0 = env.now();
        env.win_lock_all(0, win);
        double v = 1.0;
        env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
        env.win_unlock_all(win);
        total += sim::to_us(env.now() - t0);
      } else {
        env.compute(wait);
      }
    }
    if (env.rank(w) == 0) *out = total / iters;
    env.win_free(win);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Fig 4(a)",
                 "passive-target RMA overlap: origin time vs. target wait "
                 "(2 processes, Cray XC30 model)");

  RunSpec base;
  base.profile = net::cray_xc30_regular();
  base.nodes = 2;
  base.user_cpn = 1;

  report::Table t({"wait(us)", "original(us)", "thread(us)", "dmapp(us)",
                   "casper(us)"});
  for (sim::Time wait = sim::us(1); wait <= sim::us(128); wait *= 2) {
    auto spec = [&](Mode m) {
      RunSpec s = base;
      s.mode = m;
      return s;
    };
    t.row({report::fmt(sim::to_us(wait), 0),
           report::fmt(origin_time_us(spec(Mode::Original), wait), 2),
           report::fmt(origin_time_us(spec(Mode::Thread), wait), 2),
           report::fmt(origin_time_us(spec(Mode::Dmapp), wait), 2),
           report::fmt(origin_time_us(spec(Mode::Casper), wait), 2)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: original grows linearly with the wait; all "
               "async-progress modes stay flat, with thread > dmapp > casper "
               "overhead.\n";

  // --trace PATH / --json: re-run the canonical Casper configuration
  // (wait = 4 us) instrumented, dumping a Chrome trace and/or the metrics
  // block into BENCH_fig4a.json. Kept out of the timing sweep above so the
  // measured numbers are never the instrumented run.
  const char* trace_path = bench::flag_value(argc, argv, "--trace");
  const bool want_json = bench::has_flag(argc, argv, "--json");
  if (trace_path != nullptr || want_json) {
    obs::Recorder rec;
    RunSpec s = base;
    s.mode = Mode::Casper;
    s.recorder = &rec;
    origin_time_us(s, sim::us(4));
    if (trace_path != nullptr) {
      std::ofstream f(trace_path);
      if (!f) {
        std::cerr << "fig4a: cannot open " << trace_path << "\n";
        return 1;
      }
      rec.trace().export_chrome(f);
      std::cout << "trace: " << rec.trace().recorded() << " events ("
                << rec.trace().dropped() << " dropped) -> " << trace_path
                << "\n";
    }
    if (want_json) {
      // Host-side cost of the casper column (uninstrumented, best-of-5):
      // the virtual-time rows above are pinned by the golden trace, so this
      // is the number the perf ratchet in scripts/bench.sh tracks.
      const int kRuns = 5;
      const double sweep_ms = bench::host_best_of_ms(kRuns, [&] {
        for (sim::Time wait = sim::us(1); wait <= sim::us(128); wait *= 2) {
          RunSpec s = base;
          s.mode = Mode::Casper;
          origin_time_us(s, wait);
        }
      });
      if (!report::write_bench_json_file(
              "BENCH_fig4a.json", "fig4a", t, &rec.metrics(),
              bench::host_block_json(sweep_ms, kRuns))) {
        std::cerr << "fig4a: cannot write BENCH_fig4a.json\n";
        return 1;
      }
    }
  }
  return 0;
}
