// fig_kv: RMA-backed sharded KV store under skewed open-loop traffic —
// aggregate throughput per progress mode at EQUAL CORES per node.
//
// Every rank is a client and a server (src/kv/); the workload is the
// ISSUE's skewed mix: Zipfian keys (s in {0.50, 0.99}), 75% GET / 25% PUT,
// open-loop think time between requests. Core accounting per node (Table I):
//   original    C clients                 (no async progress)
//   thread      C clients + oversubscribed progress threads
//   casper(g1)  C-1 clients + 1 ghost
//   casper(g2)  C-2 clients + 2 ghosts
// Under original MPI a client's lock CAS on a remote bucket waits for the
// *target* client to re-enter the MPI stack (it is off computing its think
// time), so per-op latency inflates with the think time; ghosts decouple it.
// At s=0.99 the hot bucket serializes everything behind that latency, which
// is where Casper's fewer-but-faster clients overtake original's C clients.
//
// The linearizability checker (src/check/linear.hpp) rides EVERY row as the
// store's history sink: a row only counts if its full history linearizes.
// A violation prints the diagnosis and fails the bench.
#include <fstream>
#include <iostream>

#include "check/linear.hpp"
#include "common.hpp"
#include "kv/kv.hpp"
#include "kv/traffic.hpp"
#include "report/json.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

constexpr int kCores = 4;  // cores per node available to each mode
constexpr int kNodes = 2;

struct RowResult {
  std::uint64_t ops = 0;
  double makespan_ms = 0;
  double kops_s = 0;
  std::uint64_t lock_retries = 0;
  bool clean = false;
};

/// One simulated execution of the full workload under `spec`; the checker
/// verdict and throughput are harvested on user rank 0.
RowResult run_row(const RunSpec& spec, double zipf_s, int opc,
                  sim::Time think) {
  RowResult out;
  check::LinearChecker checker;
  bench::run(spec, [&](mpi::Env& env) {
    kv::TrafficConfig tc;
    tc.nkeys = 64;
    tc.zipf_s = zipf_s;
    tc.read_pct = 75;  // 75/25 read/write, no RMW: the ISSUE's headline mix
    tc.rmw_pct = 0;
    tc.ops_per_client = opc;
    tc.think_mean = think;
    tc.seed = 2024;
    const int nclients = env.size(env.world());
    const std::vector<kv::KvOp> ops = kv::make_ops(tc, nclients);

    kv::KvConfig kc;
    kc.nbuckets = 32;
    kc.assoc = 4;
    kv::KvStore store(env, kc, env.world());
    store.set_sink(&checker);
    store.open();
    env.barrier(env.world());
    const sim::Time t0 = env.now();
    kv::run_ops(env, store, ops, ops.size(), tc);
    env.barrier(env.world());
    const sim::Time t1 = env.now();
    store.close();
    if (env.rank(env.world()) == 0) {
      out.ops = store.global_stats().ops();
      out.lock_retries = store.global_stats().lock_retries;
      out.makespan_ms = sim::to_ms(t1 - t0);
      out.kops_s = out.makespan_ms > 0
                       ? static_cast<double>(out.ops) / out.makespan_ms
                       : 0;
    }
  });
  out.clean = checker.clean();
  if (!out.clean) {
    std::cerr << "fig_kv: LINEARIZABILITY VIOLATION: "
              << checker.check().front().diag << "\n";
  }
  return out;
}

RunSpec spec_for(Mode m, int ghosts) {
  RunSpec s;
  s.profile = net::cray_xc30_regular();
  s.nodes = kNodes;
  s.mode = m;
  if (m == Mode::Casper) {
    s.user_cpn = kCores - ghosts;
    s.ghosts = ghosts;
  } else {
    s.user_cpn = kCores;
    s.ghosts = 0;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "fig_kv",
                 "sharded KV store throughput vs. progress mode at equal "
                 "cores (2 nodes x 4 cores, Zipfian keys, 75/25 read/write)");

  const int opc = full ? 400 : 80;
  const sim::Time think = sim::us(4);

  struct ModeRow {
    const char* label;
    Mode mode;
    int ghosts;
  };
  const ModeRow modes[] = {
      {"original", Mode::Original, 0},
      {"thread", Mode::Thread, 0},
      {"casper(g1)", Mode::Casper, 1},
      {"casper(g2)", Mode::Casper, 2},
  };

  report::Table t({"zipf_s", "mode", "clients", "ops", "makespan(ms)",
                   "kops/s", "lock_retries", "lin"});
  bool all_clean = true;
  bool ordering_ok = true;
  for (double s : {0.50, 0.99}) {
    double original_kops = 0;
    for (const ModeRow& m : modes) {
      const RunSpec spec = spec_for(m.mode, m.ghosts);
      const RowResult r = run_row(spec, s, opc, think);
      all_clean = all_clean && r.clean;
      if (m.mode == Mode::Original) original_kops = r.kops_s;
      if (m.mode == Mode::Casper && m.ghosts == 1 && s > 0.9 &&
          r.kops_s < original_kops) {
        ordering_ok = false;
      }
      t.row({report::fmt(s, 2), m.label,
             std::to_string(spec.user_cpn * kNodes),
             std::to_string(r.ops), report::fmt(r.makespan_ms, 3),
             report::fmt(r.kops_s, 1), std::to_string(r.lock_retries),
             r.clean ? "clean" : "VIOLATION"});
    }
  }
  t.print(std::cout, csv);
  std::cout << "expectation: at s=0.99 the hot bucket serializes on "
               "original-MPI lock latency; casper(g1) with one fewer client "
               "per node still clears more ops/s. The checker linearizes "
               "every row's full history.\n";
  if (!all_clean) {
    std::cerr << "fig_kv: FAIL: a row's history did not linearize\n";
    return 1;
  }
  if (!ordering_ok) {
    std::cerr << "fig_kv: FAIL: casper(g1) < original at s=0.99 (the "
                 "asynchronous-progress win this figure exists to show)\n";
    return 1;
  }

  // --trace PATH / --json: instrumented casper(g1) run at s=0.99 for the
  // Chrome trace / metrics block; host best-of-5 of the casper(g1) sweep.
  const char* trace_path = bench::flag_value(argc, argv, "--trace");
  const bool want_json = bench::has_flag(argc, argv, "--json");
  if (trace_path != nullptr || want_json) {
    obs::Recorder rec;
    RunSpec s = spec_for(Mode::Casper, 1);
    s.recorder = &rec;
    run_row(s, 0.99, opc, think);
    if (trace_path != nullptr) {
      std::ofstream f(trace_path);
      if (!f) {
        std::cerr << "fig_kv: cannot open " << trace_path << "\n";
        return 1;
      }
      rec.trace().export_chrome(f);
      std::cout << "trace: " << rec.trace().recorded() << " events ("
                << rec.trace().dropped() << " dropped) -> " << trace_path
                << "\n";
    }
    if (want_json) {
      const int kRuns = 5;
      const double sweep_ms = bench::host_best_of_ms(kRuns, [&] {
        for (double zs : {0.50, 0.99}) {
          run_row(spec_for(Mode::Casper, 1), zs, opc, think);
        }
      });
      if (!report::write_bench_json_file(
              "BENCH_kv.json", "kv", t, &rec.metrics(),
              bench::host_block_json(sweep_ms, kRuns))) {
        std::cerr << "fig_kv: cannot write BENCH_kv.json\n";
        return 1;
      }
    }
  }
  return 0;
}
