// Shared helpers for the figure-reproduction benches: the four execution
// modes of the paper's evaluation (original MPI, thread-based progress,
// DMAPP/interrupt-based progress, Casper) and scale handling.
//
// Every bench accepts:
//   --csv    machine-readable output
//   --full   paper-scale parameters (minutes); default is a reduced scale
//            that preserves the curve shapes and finishes in seconds.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "progress/progress.hpp"
#include "report/table.hpp"

namespace casper::bench {

/// The progress strategies compared throughout the paper's evaluation.
enum class Mode {
  Original,  ///< no asynchronous progress
  Thread,    ///< background thread per process (oversubscribed core)
  ThreadD,   ///< background thread per process (dedicated core)
  Dmapp,     ///< hardware PUT/GET + interrupt-driven software ops
  Casper,    ///< ghost-process progress (this paper)
};

inline const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Original: return "original";
    case Mode::Thread: return "thread";
    case Mode::ThreadD: return "thread(D)";
    case Mode::Dmapp: return "dmapp";
    case Mode::Casper: return "casper";
  }
  return "?";
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Value of `--flag PATH`-style options; nullptr when absent.
inline const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// Integer value of `--flag N`-style options; `def` when absent.
inline int int_flag(int argc, char** argv, const char* flag, int def) {
  const char* v = flag_value(argc, argv, flag);
  return v != nullptr ? std::atoi(v) : def;
}

/// One simulated execution. `user_cpn` is the number of application
/// processes per node; Casper nodes get `ghosts` extra cores for ghosts, the
/// thread modes keep the paper's Table-I core accounting (oversubscribed =
/// same cores at half compute speed; dedicated = progress threads on their
/// own cores, which the caller accounts for by halving user_cpn).
struct RunSpec {
  Mode mode = Mode::Original;
  net::Profile profile;       // base platform (Cray regular by default)
  int nodes = 2;
  int user_cpn = 1;           // application processes per node
  int ghosts = 1;             // Casper ghosts per node (Casper mode only)
  core::Binding binding = core::Binding::Rank;
  core::DynamicLb dynamic = core::DynamicLb::None;
  /// Online adaptive progress control (Casper mode only; see DESIGN.md §15).
  /// Defaults to disabled, which is byte-identical to builds without it.
  progress::AdaptiveConfig adaptive;
  std::uint64_t seed = 12345;
  /// Engine shards (worker threads). 1 = the classic single-threaded engine;
  /// >1 partitions ranks by node across shards under conservative lookahead.
  /// Virtual-time results are shard-count invariant, so any value reproduces
  /// the same figure; host wall-clock scales with available cores.
  int shards = 1;
  /// Observability recorder to attach to the run (see src/obs/); null runs
  /// uninstrumented. Used for `--trace` dumps and BENCH_*.json metric blocks.
  obs::Recorder* recorder = nullptr;
};

/// Execute `app` under the spec; the app runs on the application-visible
/// world. Returns nothing; the app communicates results via captures.
inline void run(const RunSpec& spec, std::function<void(mpi::Env&)> app) {
  mpi::RunConfig rc;
  rc.machine.profile = spec.profile;
  rc.machine.topo.nodes = spec.nodes;
  rc.seed = spec.seed;
  rc.recorder = spec.recorder;
  rc.shards = spec.shards;
  switch (spec.mode) {
    case Mode::Original:
      rc.machine.topo.cores_per_node = spec.user_cpn;
      mpi::exec(rc, std::move(app));
      break;
    case Mode::Thread:
      rc.machine.topo.cores_per_node = spec.user_cpn;
      rc.progress.kind = progress::Kind::Thread;
      rc.progress.oversubscribed = true;
      mpi::exec(rc, std::move(app));
      break;
    case Mode::ThreadD:
      rc.machine.topo.cores_per_node = spec.user_cpn;
      rc.progress.kind = progress::Kind::Thread;
      rc.progress.oversubscribed = false;
      mpi::exec(rc, std::move(app));
      break;
    case Mode::Dmapp:
      rc.machine.profile = net::cray_xc30_dmapp();
      rc.machine.topo.cores_per_node = spec.user_cpn;
      rc.progress.kind = progress::Kind::Interrupt;
      mpi::exec(rc, std::move(app));
      break;
    case Mode::Casper: {
      rc.machine.topo.cores_per_node = spec.user_cpn + spec.ghosts;
      core::Config cc;
      cc.ghosts_per_node = spec.ghosts;
      cc.binding = spec.binding;
      cc.dynamic = spec.dynamic;
      cc.adaptive = spec.adaptive;
      mpi::exec(rc, std::move(app), core::layer(cc));
      break;
    }
  }
}

/// Run and return a double metric computed by the app (the app must assign
/// through the pointer on user rank 0).
inline double run_metric(const RunSpec& spec,
                         std::function<void(mpi::Env&, double*)> app) {
  double metric = 0;
  run(spec, [&metric, &app](mpi::Env& env) { app(env, &metric); });
  return metric;
}

/// Host wall-clock of `body`, best (minimum) of `runs` executions, in
/// milliseconds. Best-of-N is the standard defense against one-off scheduler
/// noise when the measured quantity is a deterministic amount of work; the
/// BENCH_*.json "host" blocks produced from this feed the perf-regression
/// gate in scripts/bench.sh.
inline double host_best_of_ms(int runs, const std::function<void()>& body) {
  using Clock = std::chrono::steady_clock;
  double best = 0;
  for (int r = 0; r < runs; ++r) {
    const auto t0 = Clock::now();
    body();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// Render the standard "host" block for BENCH_*.json: the best-of-N
/// wall-clock of the bench's casper-mode sweep.
inline std::string host_block_json(double sweep_ms, int runs) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{\"casper_sweep_ms\": %.3f, \"best_of\": %d}", sweep_ms,
                runs);
  return buf;
}

}  // namespace casper::bench
