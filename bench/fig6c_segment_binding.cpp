// Fig. 6(c): static segment binding with uneven window sizes. The first
// process of each node exposes a 4 KB window (512 doubles); the others
// expose 16 bytes. Hot traffic goes to the node masters; segment binding
// divides each hot window between the ghosts so they share the software
// processing.
#include <iostream>

#include "fig6_common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "Fig 6(c)",
                 "static segment binding, uneven window sizes "
                 "(hot 4KB window on each node master)");

  const int nodes = full ? 16 : 8;
  const int users_per_node = full ? 16 : 8;
  const int big_elems = 512;  // 4 KB of doubles

  report::Table t({"ops", "original(ms)", "seg_2g(ms)", "seg_4g(ms)",
                   "seg_8g(ms)", "speedup_8g"});
  const int max_ops = full ? 64 : 32;
  for (int ops = 1; ops <= max_ops; ops *= 2) {
    auto spec = [&](Mode m, int ghosts) {
      RunSpec s;
      s.mode = m;
      s.profile = net::cray_xc30_regular();
      s.nodes = nodes;
      s.user_cpn = users_per_node;  // ghosts are extra cores
      s.ghosts = ghosts;
      s.binding = core::Binding::Segment;
      return s;
    };
    const double orig =
        bench::fig6c_uneven_acc_us(spec(Mode::Original, 0), ops, big_elems);
    const double g2 =
        bench::fig6c_uneven_acc_us(spec(Mode::Casper, 2), ops, big_elems);
    const double g4 =
        bench::fig6c_uneven_acc_us(spec(Mode::Casper, 4), ops, big_elems);
    const double g8 =
        bench::fig6c_uneven_acc_us(spec(Mode::Casper, 8), ops, big_elems);
    t.row({report::fmt_count(static_cast<std::uint64_t>(ops)),
           report::fmt(orig / 1000.0, 2), report::fmt(g2 / 1000.0, 2),
           report::fmt(g4 / 1000.0, 2), report::fmt(g8 / 1000.0, 2),
           report::fmt(orig / g8, 2)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: performance improves with more ghosts because "
               "the hot window is divided into more segments served by "
               "different ghosts.\n";
  if (!full) std::cout << "(reduced scale; pass --full for 16x16)\n";
  return 0;
}
