// Table I: core deployment in the NWChem evaluation — computing cores vs.
// asynchronous-progress cores per node for each strategy. Verified against
// the simulator's actual rank accounting.
#include <iostream>

#include "fig8_common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

/// Count the application-visible ranks of a 1-node run.
int visible_ranks(Mode m, int cpn, int ghosts) {
  RunSpec s;
  s.mode = m;
  s.profile = net::cray_xc30_regular();
  s.nodes = 1;
  s.user_cpn = (m == Mode::Casper) ? cpn - ghosts
               : (m == Mode::ThreadD) ? cpn / 2
                                      : cpn;
  s.ghosts = ghosts;
  int ranks = 0;
  bench::run(s, [&ranks](mpi::Env& env) {
    if (env.rank(env.world()) == 0) ranks = env.size(env.world());
  });
  return ranks;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "Table I",
                 "core deployment in the NWChem evaluation (per node)");

  const int cpn = full ? 24 : 8;
  const int ghosts = full ? 4 : 1;

  report::Table t(
      {"strategy", "computing_cores", "async_cores", "measured_app_ranks"});
  t.row({"Original MPI", report::fmt_count(static_cast<std::uint64_t>(cpn)),
         "0",
         report::fmt_count(static_cast<std::uint64_t>(
             visible_ranks(Mode::Original, cpn, ghosts)))});
  t.row({"Casper",
         report::fmt_count(static_cast<std::uint64_t>(cpn - ghosts)),
         report::fmt_count(static_cast<std::uint64_t>(ghosts)),
         report::fmt_count(static_cast<std::uint64_t>(
             visible_ranks(Mode::Casper, cpn, ghosts)))});
  t.row({"Thread (O)", report::fmt_count(static_cast<std::uint64_t>(cpn)),
         report::fmt_count(static_cast<std::uint64_t>(cpn)),
         report::fmt_count(static_cast<std::uint64_t>(
             visible_ranks(Mode::Thread, cpn, ghosts)))});
  t.row({"Thread (D)",
         report::fmt_count(static_cast<std::uint64_t>(cpn / 2)),
         report::fmt_count(static_cast<std::uint64_t>(cpn / 2)),
         report::fmt_count(static_cast<std::uint64_t>(
             visible_ranks(Mode::ThreadD, cpn, ghosts)))});
  t.print(std::cout, csv);
  std::cout << "(paper values on 24-core Edison nodes: 24/0, 20/4, 24/24, "
               "12/12 — pass --full for the 24-core accounting)\n";
  return 0;
}
