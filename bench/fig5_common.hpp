// Shared workload for Fig. 5(a)-(c): all-to-all communication -
// computation - communication. Each iteration, every process issues one RMA
// operation (one double) to every other process, computes 100 us, then
// issues ten RMA operations to every other process.
#pragma once

#include "common.hpp"

namespace casper::bench {

inline double fig5_avg_iter_us(const RunSpec& spec, bool use_put) {
  return run_metric(spec, [use_put](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(
        static_cast<std::size_t>(p) * sizeof(double), sizeof(double),
        mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    const int iters = 4;
    double total = 0;
    env.barrier(w);
    for (int it = 0; it < iters; ++it) {
      env.barrier(w);
      const sim::Time t0 = env.now();
      double v = 1.0;
      for (int t = 0; t < p; ++t) {
        if (t == me) continue;
        if (use_put) {
          env.put(&v, 1, t, static_cast<std::size_t>(me), win);
        } else {
          env.accumulate(&v, 1, t, static_cast<std::size_t>(me),
                         mpi::AccOp::Sum, win);
        }
      }
      env.win_flush_all(win);
      env.compute(sim::us(100));
      for (int t = 0; t < p; ++t) {
        if (t == me) continue;
        for (int k = 0; k < 10; ++k) {
          if (use_put) {
            env.put(&v, 1, t, static_cast<std::size_t>(me), win);
          } else {
            env.accumulate(&v, 1, t, static_cast<std::size_t>(me),
                           mpi::AccOp::Sum, win);
          }
        }
      }
      env.win_flush_all(win);
      total += sim::to_us(env.now() - t0);
    }
    env.win_unlock_all(win);
    if (me == 0) *out = total / iters;
    env.win_free(win);
  });
}

}  // namespace casper::bench
