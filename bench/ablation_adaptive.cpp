// ablation_adaptive: static vs. adaptive progress control (DESIGN.md §15)
// over the workload regimes the online controller was built for.
//
// Every row runs the IDENTICAL workload twice — same geometry, same op
// stream, same per-round flush_all+barrier epoch boundaries — differing
// only in Config::adaptive.enabled. The round barriers are part of the
// workload in both series, so the adaptive series is never credited for
// sync the static series did not pay.
//
//   seg_balanced  Segment binding, uniform PUTs over every remote segment.
//                 No skew, so the controller must not remap: the no-regression
//                 row (ratio ~= 1.0 exactly — identical routing).
//   seg_skew      Same geometry, every origin hammers the first user of the
//                 other node. That rank's whole segment is chunk 0 of its
//                 node, i.e. one ghost serves everything; the controller
//                 spreads its subchunks over all ghosts (up to ~ghost-count).
//   rank_phase    Rank binding, phase-shifting hot pairs: {0,1} then {2,3}.
//                 Each phase funnels both hot users through one ghost under
//                 the static map; the controller re-partitions per phase.
//   policy_mix    Fig. 7(c) uneven PUT/ACC sizes, static random policy vs.
//                 the controller switching random -> byte-counting online.
//   kv_zipf99     The fig_kv store under Zipfian s=0.99 traffic (PR 8),
//                 driven in batches with a barrier (= adaptation point)
//                 between batches; linearizability checked on both series.
//
// ratio = static(ms) / adaptive(ms). Gate (mirrored by bench_compare.py):
// balanced rows must hold ratio >= 1 - tol, skewed rows >= 1.2x.
#include <iostream>
#include <string>
#include <vector>

#include "check/linear.hpp"
#include "fig7_common.hpp"
#include "kv/kv.hpp"
#include "kv/traffic.hpp"
#include "obs/record.hpp"
#include "report/json.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

constexpr int kSegElems = 512;  // 4 KiB of doubles per rank's segment
constexpr int kPutElems = 32;   // 256 B per PUT; 16 PUTs sweep a segment
constexpr int kRounds = 8;      // epochs per series (controller decisions)

RunSpec seg_spec(bool adaptive, int ghosts) {
  RunSpec s;
  s.mode = Mode::Casper;
  s.profile = net::cray_xc30_regular();
  s.nodes = 2;
  s.user_cpn = 4;
  s.ghosts = ghosts;
  s.binding = core::Binding::Segment;
  s.dynamic = core::DynamicLb::None;
  s.adaptive.enabled = adaptive;
  return s;
}

RunSpec rank_spec(bool adaptive) {
  RunSpec s = seg_spec(adaptive, 2);
  s.binding = core::Binding::Rank;
  return s;
}

/// Segment-binding sweep: every round each origin PUTs 256 B x 16 covering a
/// full 4 KiB segment; balanced touches every user of the other node, skewed
/// only its first user (whose segment is exactly node chunk 0). When `rec`
/// is set, user rank 0 advances the windowed-rate view at every round
/// barrier — the satellite's "explicit virtual-time advance" in action.
double seg_sweep_us(const RunSpec& spec, bool skewed,
                    obs::Recorder* rec = nullptr,
                    obs::WindowedRates* wr = nullptr) {
  return bench::run_metric(spec, [skewed, rec, wr](mpi::Env& env,
                                                   double* out) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    const int upn = p / env.runtime().topo().nodes;
    const int other = (me / upn == 0) ? upn : 0;  // other node's first user
    void* base = nullptr;
    mpi::Win win =
        env.win_allocate(kSegElems * sizeof(double), sizeof(double),
                         mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time t0 = env.now();
    std::vector<double> v(kPutElems, 1.0);
    const int sweeps = kSegElems / kPutElems;
    for (int r = 0; r < kRounds; ++r) {
      for (int c = 0; c < sweeps; ++c) {
        if (skewed) {
          env.put(v.data(), kPutElems, other, c * kPutElems, win);
        } else {
          for (int u = 0; u < upn; ++u) {
            env.put(v.data(), kPutElems, other + u, c * kPutElems, win);
          }
        }
      }
      env.win_flush_all(win);
      env.barrier(w);  // epoch boundary: the controller adapts here
      if (rec != nullptr && wr != nullptr && me == 0) {
        wr->advance(rec->metrics(), env.now());
      }
    }
    const double us = sim::to_us(env.now() - t0);
    double us_max = 0;
    env.allreduce(&us, &us_max, 1, mpi::Dt::Double, mpi::AccOp::Max, w);
    env.win_unlock_all(win);
    if (me == 0) *out = us_max;
    env.win_free(win);
  });
}

/// Rank-binding phase shift: hot local users {0,1} for the first half of the
/// rounds, {2,3} for the second. Both pairs share one bound ghost under the
/// initial map, so each phase funnels until the controller re-partitions.
double rank_phase_us(const RunSpec& spec) {
  return bench::run_metric(spec, [](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    const int upn = p / env.runtime().topo().nodes;
    const int other = (me / upn == 0) ? upn : 0;
    constexpr int kElems = 256;  // 2 KiB PUTs: ghost service dominates
    constexpr int kOpsPerTarget = 24;
    void* base = nullptr;
    mpi::Win win = env.win_allocate(kElems * sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time t0 = env.now();
    std::vector<double> v(kElems, 1.0);
    // NUMA-aware static binding pairs local users {0,1} on one ghost and
    // {2,3} on the other (one ghost per memory domain), so each phase's hot
    // pair shares a single bound ghost until the controller re-partitions.
    for (int r = 0; r < kRounds; ++r) {
      const int h0 = (r < kRounds / 2) ? 0 : 2;  // hot pair {h0, h0+1}
      for (int hot : {h0, h0 + 1}) {
        for (int k = 0; k < kOpsPerTarget; ++k) {
          env.put(v.data(), kElems, other + hot, 0, win);
        }
      }
      env.win_flush_all(win);
      env.barrier(w);
    }
    const double us = sim::to_us(env.now() - t0);
    double us_max = 0;
    env.allreduce(&us, &us_max, 1, mpi::Dt::Double, mpi::AccOp::Max, w);
    env.win_unlock_all(win);
    if (me == 0) *out = us_max;
    env.win_free(win);
  });
}

struct KvRow {
  double ms = 0;
  std::uint64_t ops = 0;
  bool clean = false;
};

/// fig_kv's Zipfian s=0.99 traffic against the PR 8 store under Segment
/// binding, driven in batches with a barrier between batches so the
/// controller gets epoch boundaries mid-workload. Zero think time keeps the
/// run service-bound (ghost load, not client pacing, sets the makespan).
///
/// The key population is adversarially PLACED: every Zipf rank is remapped
/// through key_for() onto server 0, striped across its buckets so that
/// consecutive popularity ranks land in different quarters of its segment.
/// That turns per-key popularity skew into per-ghost load skew (one node
/// chunk holds the whole working set) without serializing the traffic on a
/// single bucket lock — the regime segment re-partitioning can actually fix.
KvRow kv_zipf_row(const RunSpec& spec, int batches, int per_batch) {
  KvRow out;
  check::LinearChecker checker;
  bench::run(spec, [&](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    const int nclients = env.size(w);
    kv::TrafficConfig tc;
    tc.nkeys = 32;
    tc.zipf_s = 0.99;
    tc.read_pct = 75;
    tc.rmw_pct = 0;
    tc.ops_per_client = batches * per_batch;
    tc.think_mean = 0;
    tc.seed = 2024;
    std::vector<kv::KvOp> ops = kv::make_ops(tc, nclients);

    kv::KvConfig kc;
    kc.nbuckets = 16;
    kc.assoc = 4;
    kv::KvStore store(env, kc, w);
    for (kv::KvOp& op : ops) {
      const std::uint64_t z = op.key - 1;  // 0-based Zipf popularity rank
      const int bucket = static_cast<int>((z % 4) * 4 + (z / 4) % 4);
      const int chain = static_cast<int>(z / 16);
      op.key = store.key_for(0, bucket, chain);
    }
    store.set_sink(&checker);
    store.open();
    env.barrier(w);
    const sim::Time t0 = env.now();
    env.compute(static_cast<sim::Time>(me + 1) * sim::ns(1637));
    const std::size_t batch_global =
        static_cast<std::size_t>(nclients) * static_cast<std::size_t>(per_batch);
    std::size_t done = 0;
    for (const kv::KvOp& op : ops) {
      if (op.client == me) {
        env.compute(op.think);
        if (op.kind == 0) {
          store.get(op.key);
        } else {
          store.put(op.key, op.val);
        }
      }
      ++done;
      if (done % batch_global == 0 && done != ops.size()) {
        env.barrier(w);  // batch boundary = adaptation point
      }
    }
    env.barrier(w);
    const sim::Time t1 = env.now();
    store.close();
    if (me == 0) {
      out.ops = store.global_stats().ops();
      out.ms = sim::to_ms(t1 - t0);
    }
  });
  out.clean = checker.clean();
  if (!out.clean) {
    std::cerr << "ablation_adaptive: LINEARIZABILITY VIOLATION: "
              << checker.check().front().diag << "\n";
  }
  return out;
}

std::uint64_t ctr(const obs::Recorder& rec, const char* name) {
  return rec.metrics().counter_value(name);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "ablation_adaptive",
                 "static vs. adaptive progress control: segment rebinding, "
                 "rank phase shift, policy switching, Zipfian KV");

  report::Table t({"row", "kind", "static(ms)", "adaptive(ms)", "ratio",
                   "rebinds", "policy_switches"});
  bool gate_ok = true;
  const double kTol = 0.05;
  const auto add_row = [&](const char* row, const char* kind, double st_ms,
                           double ad_ms, const obs::Recorder& rec) {
    const double ratio = ad_ms > 0 ? st_ms / ad_ms : 0;
    const bool skewed = std::string(kind) == "skewed";
    const bool ok = skewed ? ratio >= 1.2 : ratio >= 1.0 - kTol;
    if (!ok) {
      std::cerr << "ablation_adaptive: GATE FAIL: row " << row << " ratio "
                << ratio << (skewed ? " < 1.2" : " < 1 - tol") << "\n";
      gate_ok = false;
    }
    t.row({row, kind, report::fmt(st_ms, 3), report::fmt(ad_ms, 3),
           report::fmt(ratio, 2), std::to_string(ctr(rec, "adapt.rebinds")),
           std::to_string(ctr(rec, "adapt.policy_switches"))});
  };

  // -- seg_balanced: uniform load, the controller must hold still ----------
  obs::WindowedRates rates;
  obs::Recorder rec_bal;
  {
    const double st = seg_sweep_us(seg_spec(false, 4), false) / 1000.0;
    RunSpec ad = seg_spec(true, 4);
    ad.recorder = &rec_bal;
    const double adt = seg_sweep_us(ad, false) / 1000.0;
    add_row("seg_balanced", "balanced", st, adt, rec_bal);
  }

  // -- seg_skew: one hot rank = one hot chunk; instrumented run also feeds
  //    the windowed-rate view exported in the JSON metrics block -----------
  obs::Recorder rec_skew;
  {
    const double st = seg_sweep_us(seg_spec(false, 4), true) / 1000.0;
    RunSpec ad = seg_spec(true, 4);
    ad.recorder = &rec_skew;
    const double adt = seg_sweep_us(ad, true, &rec_skew, &rates) / 1000.0;
    add_row("seg_skew", "skewed", st, adt, rec_skew);
  }

  // -- rank_phase: phase-shifting hot pairs under Rank binding -------------
  obs::Recorder rec_phase;
  {
    const double st = rank_phase_us(rank_spec(false)) / 1000.0;
    RunSpec ad = rank_spec(true);
    ad.recorder = &rec_phase;
    const double adt = rank_phase_us(ad) / 1000.0;
    add_row("rank_phase", "skewed", st, adt, rec_phase);
  }

  // -- policy_mix: fig7(c) uneven sizes, random vs. random->byte-counting --
  obs::Recorder rec_pol;
  {
    const int nodes = 4, upn = 8, ghosts = 4, hot_pairs = 4, elems = 2048;
    RunSpec st_spec =
        bench::fig7_spec(core::DynamicLb::Random, nodes, upn, ghosts);
    const double st =
        bench::fig7_uneven_us(st_spec, hot_pairs, elems, true, true) / 1000.0;
    RunSpec ad = bench::fig7_adaptive_spec(nodes, upn, ghosts);
    ad.recorder = &rec_pol;
    const double adt =
        bench::fig7_uneven_us(ad, hot_pairs, elems, true, true) / 1000.0;
    add_row("policy_mix", "balanced", st, adt, rec_pol);
  }

  // -- kv_zipf99: the PR 8 store under its skewed headline traffic ---------
  obs::Recorder rec_kv;
  bool kv_clean = true;
  {
    RunSpec st_spec = seg_spec(false, 4);
    const KvRow st = kv_zipf_row(st_spec, 12, 16);
    RunSpec ad = seg_spec(true, 4);
    ad.recorder = &rec_kv;
    const KvRow adr = kv_zipf_row(ad, 12, 16);
    kv_clean = st.clean && adr.clean;
    add_row("kv_zipf99", "skewed", st.ms, adr.ms, rec_kv);
  }

  t.print(std::cout, csv);
  std::cout << "expectation: adaptive matches static on balanced load and "
               "wins >= 1.2x wherever one ghost is left holding the skew.\n";
  if (!kv_clean) {
    std::cerr << "ablation_adaptive: FAIL: KV history did not linearize\n";
    return 1;
  }
  if (!gate_ok) {
    std::cerr << "ablation_adaptive: FAIL: adaptive-vs-static ordering gate\n";
    return 1;
  }

  if (bench::has_flag(argc, argv, "--json")) {
    // Metrics block: the instrumented seg_skew adaptive run plus its
    // windowed rates folded in as adapt.rate.* (satellite 1's export path).
    rates.fold_into(rec_skew.metrics(), "adapt.rate.");
    const int kRuns = 3;
    const double sweep_ms = bench::host_best_of_ms(kRuns, [&] {
      seg_sweep_us(seg_spec(false, 4), true);
      seg_sweep_us(seg_spec(true, 4), true);
    });
    if (!report::write_bench_json_file(
            "BENCH_adaptive.json", "adaptive", t, &rec_skew.metrics(),
            bench::host_block_json(sweep_ms, kRuns))) {
      std::cerr << "ablation_adaptive: cannot write BENCH_adaptive.json\n";
      return 1;
    }
    std::cout << "wrote BENCH_adaptive.json\n";
  }
  return 0;
}
