// Fig. 8(c): the (T) portion of CCSD(T) for C20 — long DGEMMs between GETs,
// so processes stall waiting for remote GETs unless progress is
// asynchronous. The paper reports Casper almost 2x faster than original MPI
// at every scale, with thread-based progress far less effective.
#include <iostream>

#include "fig8_common.hpp"

using namespace casper;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "Fig 8(c)",
                 "(T) portion of CCSD(T), C20 profile (compute-intensive)");

  const int cpn = full ? 24 : 8;
  const int ghosts = full ? 4 : 1;
  report::Table t({"cores", "original(ms)", "casper(ms)", "thread_O(ms)",
                   "thread_D(ms)", "casper_speedup"});
  for (int nodes : {full ? 60 : 6, full ? 100 : 10, full ? 116 : 14}) {
    auto p = ccsd::t_portion_profile(full ? 512 : 128);
    auto row = bench::fig8_row(nodes, cpn, ghosts, p);
    t.row({report::fmt_count(static_cast<std::uint64_t>(nodes * cpn)),
           report::fmt(row.original_ms), report::fmt(row.casper_ms),
           report::fmt(row.thread_o_ms), report::fmt(row.thread_d_ms),
           report::fmt(row.original_ms / row.casper_ms, 2)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: casper substantially faster than original at "
               "every scale (GETs against DGEMM-busy targets); thread modes "
               "degrade computation and trail casper.\n";
  if (!full) std::cout << "(reduced scale; pass --full for 24-core nodes)\n";
  return 0;
}
