// Ablation (not in the paper's figures): binding policy matrix on one mixed
// workload — uniform all-to-all accumulates PLUS a hot node-master PUT
// stream — isolating what each design choice contributes:
//   rank vs segment static binding x {none, random, op-count, byte-count}.
#include <iostream>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

double mixed_us(const RunSpec& spec) {
  return bench::run_metric(spec, [](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    const auto& topo = env.runtime().topo();
    const int upn = p / topo.nodes;
    const int elems = 64;
    void* base = nullptr;
    mpi::Win win = env.win_allocate(
        static_cast<std::size_t>(elems) * sizeof(double), sizeof(double),
        mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time t0 = env.now();
    std::vector<double> v(static_cast<std::size_t>(elems), 1.0);
    for (int round = 0; round < 8; ++round) {
      for (int t = 0; t < p; ++t) {
        if (t == me) continue;
        env.accumulate(v.data(), 4, t, 0, mpi::AccOp::Sum, win);
        if (t % upn == 0) {
          env.put(v.data(), elems, t, 0, win);
        }
      }
    }
    env.win_flush_all(win);
    env.barrier(w);
    const double us = sim::to_us(env.now() - t0);
    double us_max = 0;
    env.allreduce(&us, &us_max, 1, mpi::Dt::Double, mpi::AccOp::Max, w);
    env.win_unlock_all(win);
    if (me == 0) *out = us_max;
    env.win_free(win);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Ablation",
                 "binding policy matrix on a mixed acc + hot-put workload "
                 "(8 nodes x 8 users + 4 ghosts)");

  report::Table t({"static_binding", "dynamic", "time(ms)"});
  for (auto binding : {core::Binding::Rank, core::Binding::Segment}) {
    for (auto dyn :
         {core::DynamicLb::None, core::DynamicLb::Random,
          core::DynamicLb::OpCounting, core::DynamicLb::ByteCounting}) {
      RunSpec s;
      s.mode = Mode::Casper;
      s.profile = net::cray_xc30_regular();
      s.nodes = 8;
      s.user_cpn = 8;
      s.ghosts = 4;
      s.binding = binding;
      s.dynamic = dyn;
      const char* bn = binding == core::Binding::Rank ? "rank" : "segment";
      const char* dn = dyn == core::DynamicLb::None           ? "none"
                       : dyn == core::DynamicLb::Random       ? "random"
                       : dyn == core::DynamicLb::OpCounting   ? "op-count"
                                                              : "byte-count";
      t.row({bn, dn, report::fmt(mixed_us(s) / 1000.0, 2)});
    }
  }
  {
    RunSpec s;
    s.mode = Mode::Original;
    s.profile = net::cray_xc30_regular();
    s.nodes = 8;
    s.user_cpn = 8;
    t.row({"(original MPI)", "-", report::fmt(mixed_us(s) / 1000.0, 2)});
  }
  t.print(std::cout, csv);
  return 0;
}
