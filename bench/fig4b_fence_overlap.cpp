// Fig. 4(b): active-target (fence) overlap — time on rank 0 of
// fence - n x accumulate - fence while rank 1 executes
// fence - 100 us busy wait - fence, plus Casper's improvement percentage.
//
// Async progress overlaps the accumulates with the target's busy wait; once
// the communication exceeds the 100 us delay (n beyond ~128), there is
// nothing left to overlap and the improvement decays.
#include <iostream>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

double fence_time_us(const RunSpec& spec, int nops) {
  return bench::run_metric(spec, [nops](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    const int iters = 8;
    double total = 0;
    env.barrier(w);
    for (int it = 0; it < iters; ++it) {
      const sim::Time t0 = env.now();
      env.win_fence(mpi::kModeNoPrecede, win);
      if (env.rank(w) == 0) {
        double v = 1.0;
        for (int i = 0; i < nops; ++i) {
          env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
        }
      } else {
        env.compute(sim::us(100));
      }
      env.win_fence(mpi::kModeNoSucceed, win);
      if (env.rank(w) == 0) total += sim::to_us(env.now() - t0);
    }
    if (env.rank(w) == 0) *out = total / iters;
    env.win_free(win);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Fig 4(b)",
                 "fence RMA overlap: rank-0 time vs. ops with a 100 us "
                 "target delay (2 processes, Cray XC30 model)");

  RunSpec base;
  base.profile = net::cray_xc30_regular();
  base.nodes = 2;
  base.user_cpn = 1;

  report::Table t({"ops", "original(us)", "thread(us)", "dmapp(us)",
                   "casper(us)", "casper_improvement(%)"});
  for (int n = 1; n <= 1024; n *= 2) {
    auto spec = [&](Mode m) {
      RunSpec s = base;
      s.mode = m;
      return s;
    };
    const double orig = fence_time_us(spec(Mode::Original), n);
    const double thr = fence_time_us(spec(Mode::Thread), n);
    const double dma = fence_time_us(spec(Mode::Dmapp), n);
    const double csp = fence_time_us(spec(Mode::Casper), n);
    t.row({report::fmt_count(static_cast<std::uint64_t>(n)),
           report::fmt(orig, 1), report::fmt(thr, 1), report::fmt(dma, 1),
           report::fmt(csp, 1),
           report::fmt(100.0 * (orig - csp) / orig, 1)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: casper improvement is highest for small/medium "
               "op counts and decreases once communication exceeds the "
               "100 us overlap window (n > ~128).\n";
  return 0;
}
