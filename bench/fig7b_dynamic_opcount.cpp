// Fig. 7(b): the operation-counting policy vs. random vs. static when node
// masters receive ACCUMULATE+PUT pairs. Accumulates must follow static
// binding (ordering/atomicity), so the bound ghost is loaded; op-counting
// steers the PUTs to the less-loaded ghosts, where random picks blindly.
#include <iostream>

#include "fig7_common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool adaptive = bench::has_flag(argc, argv, "--adaptive");
  report::banner(std::cout, "Fig 7(b)",
                 "operation-counting dynamic binding: uneven PUT/ACC pairs "
                 "to node masters");

  const int nodes = full ? 16 : 8;
  const int upn = full ? 20 : 8;
  const int ghosts = 4;

  RunSpec orig;
  orig.mode = Mode::Original;
  orig.profile = net::cray_xc30_regular();
  orig.nodes = nodes;
  orig.user_cpn = upn;

  std::vector<std::string> cols = {"hot_pairs",      "original(ms)",
                                   "static(ms)",     "random(ms)",
                                   "op_counting(ms)", "opcount_speedup"};
  if (adaptive) cols.push_back("adaptive(ms)");
  report::Table t(cols);
  const int max_n = full ? 2048 : 256;
  for (int n = 2; n <= max_n; n *= 4) {
    const double o = bench::fig7_uneven_us(orig, n, 1, true);
    const double st = bench::fig7_uneven_us(
        bench::fig7_spec(core::DynamicLb::None, nodes, upn, ghosts), n, 1,
        true);
    const double rnd = bench::fig7_uneven_us(
        bench::fig7_spec(core::DynamicLb::Random, nodes, upn, ghosts), n, 1,
        true);
    const double opc = bench::fig7_uneven_us(
        bench::fig7_spec(core::DynamicLb::OpCounting, nodes, upn, ghosts), n,
        1, true);
    std::vector<std::string> row = {
        report::fmt_count(static_cast<std::uint64_t>(n)),
        report::fmt(o / 1000.0, 2),   report::fmt(st / 1000.0, 2),
        report::fmt(rnd / 1000.0, 2), report::fmt(opc / 1000.0, 2),
        report::fmt(rnd / opc, 2)};
    if (adaptive) {
      const double ad = bench::fig7_uneven_us(
          bench::fig7_adaptive_spec(nodes, upn, ghosts), n, 1, true, true);
      row.push_back(report::fmt(ad / 1000.0, 2));
    }
    t.row(row);
  }
  t.print(std::cout, csv);
  std::cout << "expectation: op-counting beats random (it accounts for the "
               "accumulates pinned to the bound ghost), which beats "
               "static.\n";
  if (!full) std::cout << "(reduced scale; pass --full for 16x20 + 4g)\n";
  return 0;
}
