// Fig. 8(b): time of a single CCSD iteration for the C20 problem (larger,
// more compute per task) at increasing machine size, under the four Table-I
// deployments.
#include <iostream>

#include "fig8_common.hpp"

using namespace casper;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "Fig 8(b)",
                 "CCSD iteration, C20 profile");

  const int cpn = full ? 24 : 8;
  const int ghosts = full ? 4 : 1;
  report::Table t({"cores", "original(ms)", "casper(ms)", "thread_O(ms)",
                   "thread_D(ms)"});
  for (int nodes : {full ? 60 : 6, full ? 100 : 10, full ? 116 : 14}) {
    auto p = ccsd::ccsd_profile(full ? 768 : 192);
    p.compute_per_task = sim::us(300);  // C20: heavier contractions
    p.tile = 40;
    auto row = bench::fig8_row(nodes, cpn, ghosts, p);
    t.row({report::fmt_count(static_cast<std::uint64_t>(nodes * cpn)),
           report::fmt(row.original_ms), report::fmt(row.casper_ms),
           report::fmt(row.thread_o_ms), report::fmt(row.thread_d_ms)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: same ordering as 8(a); casper's advantage "
               "persists at the larger per-task compute of C20.\n";
  if (!full) std::cout << "(reduced scale; pass --full for 24-core nodes)\n";
  return 0;
}
