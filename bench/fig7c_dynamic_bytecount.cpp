// Fig. 7(c): the byte-counting policy vs. op-counting/random/static when the
// node masters receive PUT/ACC pairs of increasing *size* while everyone
// else gets single doubles. Counting operations misjudges the load; counting
// bytes steers large transfers away from busy ghosts.
#include <iostream>

#include "fig7_common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool adaptive = bench::has_flag(argc, argv, "--adaptive");
  report::banner(std::cout, "Fig 7(c)",
                 "byte-counting dynamic binding: uneven PUT/ACC sizes to "
                 "node masters");

  const int nodes = full ? 16 : 8;
  const int upn = full ? 20 : 8;
  const int ghosts = 4;
  const int hot_pairs = 4;

  RunSpec orig;
  orig.mode = Mode::Original;
  orig.profile = net::cray_xc30_regular();
  orig.nodes = nodes;
  orig.user_cpn = upn;

  std::vector<std::string> cols = {
      "hot_elems",       "original(ms)",      "static(ms)",  "random(ms)",
      "op_counting(ms)", "byte_counting(ms)", "byte_speedup"};
  if (adaptive) cols.push_back("adaptive(ms)");
  report::Table t(cols);
  const int max_elems = full ? 65536 : 4096;
  for (int elems = 1; elems <= max_elems; elems *= 8) {
    const double o = bench::fig7_uneven_us(orig, hot_pairs, elems, true);
    const double st = bench::fig7_uneven_us(
        bench::fig7_spec(core::DynamicLb::None, nodes, upn, ghosts),
        hot_pairs, elems, true);
    const double rnd = bench::fig7_uneven_us(
        bench::fig7_spec(core::DynamicLb::Random, nodes, upn, ghosts),
        hot_pairs, elems, true);
    const double opc = bench::fig7_uneven_us(
        bench::fig7_spec(core::DynamicLb::OpCounting, nodes, upn, ghosts),
        hot_pairs, elems, true);
    const double byt = bench::fig7_uneven_us(
        bench::fig7_spec(core::DynamicLb::ByteCounting, nodes, upn, ghosts),
        hot_pairs, elems, true);
    std::vector<std::string> row = {
        report::fmt_count(static_cast<std::uint64_t>(elems)),
        report::fmt(o / 1000.0, 2),   report::fmt(st / 1000.0, 2),
        report::fmt(rnd / 1000.0, 2), report::fmt(opc / 1000.0, 2),
        report::fmt(byt / 1000.0, 2), report::fmt(opc / byt, 2)};
    if (adaptive) {
      const double ad = bench::fig7_uneven_us(
          bench::fig7_adaptive_spec(nodes, upn, ghosts), hot_pairs, elems,
          true, true);
      row.push_back(report::fmt(ad / 1000.0, 2));
    }
    t.row(row);
  }
  t.print(std::cout, csv);
  std::cout << "expectation: neither random nor op-counting handles uneven "
               "sizes; byte-counting outperforms both as the hot transfer "
               "size grows.\n";
  if (!full) std::cout << "(reduced scale; pass --full for 16x20 + 4g)\n";
  return 0;
}
