// Fig. 3(a): MPI_WIN_ALLOCATE overhead vs. number of local processes, on one
// node of the Cray XC30 model.
//
// Series: original MPI, Casper with the default epochs_used (all types),
// "lock" only, "lockall" only, "fence" only. Casper's cost is dominated by
// how many overlapping internal windows it must create: one per local user
// process when "lock" is included, a single extra window otherwise.
#include <iostream>
#include <vector>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

double alloc_time_us(const RunSpec& spec, const char* epochs_hint) {
  return bench::run_metric(spec, [epochs_hint](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    mpi::Info info;
    if (epochs_hint != nullptr) {
      info.set(core::kEpochsUsedKey, epochs_hint);
    }
    env.barrier(w);
    const sim::Time t0 = env.now();
    void* base = nullptr;
    mpi::Win win =
        env.win_allocate(4096, sizeof(double), info, w, &base);
    const double us = sim::to_us(env.now() - t0);
    if (env.rank(w) == 0) *out = us;
    env.win_free(win);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Fig 3(a)",
                 "window allocation overhead vs. local processes "
                 "(1 node, Cray XC30 model)");

  report::Table t({"local_procs", "original(us)", "casper_default(us)",
                   "casper_lock(us)", "casper_lockall(us)",
                   "casper_fence(us)"});
  for (int n = 2; n <= 22; n += 2) {
    RunSpec orig;
    orig.mode = Mode::Original;
    orig.profile = net::cray_xc30_regular();
    orig.nodes = 1;
    orig.user_cpn = n;

    RunSpec csp = orig;
    csp.mode = Mode::Casper;
    csp.ghosts = 1;

    t.row({report::fmt_count(static_cast<std::uint64_t>(n)),
           report::fmt(alloc_time_us(orig, nullptr), 1),
           report::fmt(alloc_time_us(csp, nullptr), 1),
           report::fmt(alloc_time_us(csp, "lock"), 1),
           report::fmt(alloc_time_us(csp, "lockall"), 1),
           report::fmt(alloc_time_us(csp, "fence"), 1)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: default/lock grow with local process count "
               "(one internal window per local user); lockall/fence stay "
               "near a small constant multiple of original MPI.\n";
  return 0;
}
