// Fig. 5(c): ACCUMULATE scalability on the Fusion/MVAPICH model (InfiniBand:
// hardware contiguous PUT/GET, software accumulates served by a background
// thread when thread progress is enabled).
#include <iostream>

#include "fig5_common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  // Engine shards: virtual-time results are shard-count invariant, so the
  // figure is identical for any value; >1 uses host worker threads.
  const int shards = bench::int_flag(argc, argv, "--shards", 1);
  report::banner(std::cout, "Fig 5(c)",
                 "accumulate scalability on Fusion/MVAPICH (ppn=1)");

  report::Table t({"procs", "original(ms)", "thread(ms)", "casper(ms)"});
  const int max_p = full ? 256 : 64;
  for (int p = 2; p <= max_p; p *= 2) {
    auto spec = [&](Mode m) {
      RunSpec s;
      s.mode = m;
      s.profile = net::fusion_mvapich();
      s.nodes = p;
      s.user_cpn = 1;
      s.shards = shards;
      return s;
    };
    t.row({report::fmt_count(static_cast<std::uint64_t>(p)),
           report::fmt(bench::fig5_avg_iter_us(spec(Mode::Original), false) /
                           1000.0,
                       3),
           report::fmt(bench::fig5_avg_iter_us(spec(Mode::Thread), false) /
                           1000.0,
                       3),
           report::fmt(bench::fig5_avg_iter_us(spec(Mode::Casper), false) /
                           1000.0,
                       3)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: casper improves accumulate progress (software "
               "active messages in MVAPICH); thread progress shows "
               "significant overhead.\n";
  if (!full) std::cout << "(reduced scale; pass --full for 2..256 procs)\n";
  return 0;
}
