// Shared harness for Fig. 8 / Table I: the mini-NWChem CCSD phases under the
// paper's four core deployments (Table I, scaled to the simulated node
// size):
//
//   original MPI : all cores compute, no async progress
//   casper       : cores - G compute, G ghost processes per node
//   thread (O)   : all cores compute, progress threads oversubscribed
//   thread (D)   : half the cores compute, progress threads on the rest
#pragma once

#include "ccsd/ccsd.hpp"
#include "common.hpp"

namespace casper::bench {

struct Fig8Row {
  double original_ms = 0;
  double casper_ms = 0;
  double thread_o_ms = 0;
  double thread_d_ms = 0;
};

inline double ccsd_wall_ms(const RunSpec& spec, const ccsd::Params& p) {
  return run_metric(spec, [&p](mpi::Env& env, double* out) {
    auto r = ccsd::run_phase(env, env.world(), p);
    if (env.rank(env.world()) == 0) *out = sim::to_ms(r.wall);
  });
}

/// Run one problem at one machine size under all four deployments.
/// `cpn` is the full per-node core count; Casper dedicates `ghosts` of them.
inline Fig8Row fig8_row(int nodes, int cpn, int ghosts,
                        const ccsd::Params& p) {
  Fig8Row row;
  {
    RunSpec s;
    s.mode = Mode::Original;
    s.profile = net::cray_xc30_regular();
    s.nodes = nodes;
    s.user_cpn = cpn;
    row.original_ms = ccsd_wall_ms(s, p);
  }
  {
    RunSpec s;
    s.mode = Mode::Casper;
    s.profile = net::cray_xc30_regular();
    s.nodes = nodes;
    s.user_cpn = cpn - ghosts;  // same total cores as the other modes
    s.ghosts = ghosts;
    row.casper_ms = ccsd_wall_ms(s, p);
  }
  {
    RunSpec s;
    s.mode = Mode::Thread;  // oversubscribed
    s.profile = net::cray_xc30_regular();
    s.nodes = nodes;
    s.user_cpn = cpn;
    row.thread_o_ms = ccsd_wall_ms(s, p);
  }
  {
    RunSpec s;
    s.mode = Mode::ThreadD;  // dedicated: half the cores run the app
    s.profile = net::cray_xc30_regular();
    s.nodes = nodes;
    s.user_cpn = cpn / 2;
    row.thread_d_ms = ccsd_wall_ms(s, p);
  }
  return row;
}

}  // namespace casper::bench
