// google-benchmark microbenchmarks of the simulator substrate itself:
// scheduler event throughput, rank context-switch cost, datatype pack, and
// end-to-end simulated RMA throughput. These measure the *host* cost of
// simulation (not virtual time) and guard against performance regressions in
// the engine.
#include <benchmark/benchmark.h>

#include <vector>

#include "mpi/datatype.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "sim/engine.hpp"

using namespace casper;

static void BM_EngineEvents(benchmark::State& state) {
  const int n_events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine::Options o;
    o.nranks = 1;
    sim::Engine e(o, [n_events](sim::Context& ctx) {
      for (int i = 0; i < n_events; ++i) {
        ctx.engine().post_event(ctx.now() + sim::ns(10),
                                [] { /* empty event */ });
        ctx.advance(sim::ns(20));
      }
    });
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * n_events);
}
BENCHMARK(BM_EngineEvents)->Arg(1000)->Arg(10000);

static void BM_RankSwitch(benchmark::State& state) {
  const int switches = 1000;
  for (auto _ : state) {
    sim::Engine::Options o;
    o.nranks = 2;
    sim::Engine e(o, [switches](sim::Context& ctx) {
      for (int i = 0; i < switches; ++i) ctx.advance(sim::ns(10));
    });
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * switches * 2);
}
BENCHMARK(BM_RankSwitch);

// Switch cost as rank count grows: with fibers this is flat per switch (the
// heaps are O(log n)); with the old per-rank OS threads it also paid kernel
// scheduler pressure. Argument = number of simulated ranks.
static void BM_RankSwitchScaled(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const int switches = 200;
  for (auto _ : state) {
    sim::Engine::Options o;
    o.nranks = nranks;
    o.stack_bytes = 64 * 1024;
    sim::Engine e(o, [switches](sim::Context& ctx) {
      for (int i = 0; i < switches; ++i) ctx.advance(sim::ns(1));
    });
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * switches * nranks);
}
BENCHMARK(BM_RankSwitchScaled)->Arg(16)->Arg(256)->Arg(1024);

static void BM_PackStrided(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  std::vector<double> src(static_cast<std::size_t>(blocks) * 4);
  const auto dt = mpi::vector_of(mpi::Dt::Double, 2, 4);
  for (auto _ : state) {
    auto out = mpi::pack(src.data(), blocks, dt);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * blocks * 2 *
                          static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_PackStrided)->Arg(64)->Arg(1024);

static void BM_SimulatedRmaOps(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::RunConfig rc;
    rc.machine.profile = net::cray_xc30_regular();
    rc.machine.topo.nodes = 2;
    rc.machine.topo.cores_per_node = 1;
    mpi::exec(rc, [ops](mpi::Env& env) {
      auto w = env.world();
      void* base = nullptr;
      auto win = env.win_allocate(sizeof(double), sizeof(double),
                                  mpi::Info{}, w, &base);
      env.win_lock_all(0, win);
      if (env.rank(w) == 0) {
        double v = 1;
        for (int i = 0; i < ops; ++i) {
          env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
        }
      }
      env.win_flush_all(win);
      env.barrier(w);
      env.win_unlock_all(win);
      env.win_free(win);
    });
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_SimulatedRmaOps)->Arg(1000);

BENCHMARK_MAIN();
