// Fig. 8(a): time of a single CCSD iteration for the W16 water-cluster
// problem (communication-intensive profile) at increasing machine size,
// under the four Table-I deployments.
#include <iostream>

#include "fig8_common.hpp"

using namespace casper;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "Fig 8(a)",
                 "CCSD iteration, W16 profile (communication-intensive)");

  const int cpn = full ? 24 : 8;
  const int ghosts = full ? 4 : 1;
  report::Table t({"cores", "original(ms)", "casper(ms)", "thread_O(ms)",
                   "thread_D(ms)"});
  for (int nodes : {full ? 32 : 4, full ? 64 : 8, full ? 80 : 12}) {
    auto p = ccsd::ccsd_profile(full ? 512 : 128);
    auto row = bench::fig8_row(nodes, cpn, ghosts, p);
    t.row({report::fmt_count(static_cast<std::uint64_t>(nodes * cpn)),
           report::fmt(row.original_ms), report::fmt(row.casper_ms),
           report::fmt(row.thread_o_ms), report::fmt(row.thread_d_ms)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: casper fastest at small scale (computation "
               "dominates, async progress matters); gap narrows at larger "
               "scale; thread modes lose compute throughput.\n";
  if (!full) std::cout << "(reduced scale; pass --full for 24-core nodes)\n";
  return 0;
}
