// Fig. 4(c): the cost of DMAPP's interrupt-based progress — time on rank 0
// of lockall - n x accumulate - unlockall while rank 1 runs a DGEMM, plus
// the number of system interrupts raised.
//
// Every software-path message raises one interrupt at the target; the
// interrupt count grows linearly with the accumulate count and becomes the
// bottleneck (each interrupt also steals time from the target's DGEMM).
#include <iostream>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

struct Sample {
  double origin_us = 0;
  double interrupts = 0;
};

Sample run_one(const RunSpec& spec, int nops) {
  Sample s;
  bench::run(spec, [nops, &s](mpi::Env& env) {
    mpi::Comm w = env.world();
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      const sim::Time t0 = env.now();
      env.win_lock_all(0, win);
      double v = 1.0;
      for (int i = 0; i < nops; ++i) {
        env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
      }
      env.win_unlock_all(win);
      s.origin_us = sim::to_us(env.now() - t0);
    } else {
      env.compute(sim::ms(2));  // the DGEMM
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      s.interrupts =
          static_cast<double>(env.runtime().stats().get("interrupts"));
    }
    env.win_free(win);
  });
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Fig 4(c)",
                 "DMAPP interrupt overhead vs. accumulate count "
                 "(2 processes, DGEMM on the target)");

  RunSpec base;
  base.profile = net::cray_xc30_regular();
  base.nodes = 2;
  base.user_cpn = 1;

  report::Table t({"ops", "original(us)", "dmapp(us)", "casper(us)",
                   "system_interrupts"});
  for (int n = 16; n <= 1024; n *= 4) {
    auto spec = [&](Mode m) {
      RunSpec s = base;
      s.mode = m;
      return s;
    };
    const Sample orig = run_one(spec(Mode::Original), n);
    const Sample dma = run_one(spec(Mode::Dmapp), n);
    const Sample csp = run_one(spec(Mode::Casper), n);
    t.row({report::fmt_count(static_cast<std::uint64_t>(n)),
           report::fmt(orig.origin_us, 1), report::fmt(dma.origin_us, 1),
           report::fmt(csp.origin_us, 1),
           report::fmt_count(static_cast<std::uint64_t>(dma.interrupts))});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: interrupts grow linearly with ops; dmapp origin "
               "time grows with the interrupt serialization while casper "
               "stays cheap; original waits for the full DGEMM.\n";
  return 0;
}
