// Ablation (design-choice study): what the user hints buy.
//  (1) epochs_used info hint: window allocation cost vs. hint value
//      (already swept in Fig 3(a); here: the fence-path cost impact).
//  (2) fence asserts: NOPRECEDE / NOSTORE+NOPUT+NOPRECEDE vs. no asserts.
//  (3) PSCW NOCHECK: skipping the post->start synchronization.
#include <iostream>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

RunSpec csp_spec() {
  RunSpec s;
  s.mode = Mode::Casper;
  s.profile = net::cray_xc30_regular();
  s.nodes = 2;
  s.user_cpn = 1;
  return s;
}

double fence_us(unsigned first_assert, unsigned mid_assert,
                const char* hint) {
  return bench::run_metric(csp_spec(), [first_assert, mid_assert,
                                        hint](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    mpi::Info info;
    if (hint != nullptr) info.set(core::kEpochsUsedKey, hint);
    void* base = nullptr;
    mpi::Win win =
        env.win_allocate(sizeof(double), sizeof(double), info, w, &base);
    env.barrier(w);
    const sim::Time t0 = env.now();
    const int iters = 64;
    env.win_fence(first_assert, win);
    for (int i = 0; i < iters; ++i) {
      if (env.rank(w) == 0) {
        double v = 1.0;
        env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
      }
      env.win_fence(mid_assert, win);
    }
    if (env.rank(w) == 0) *out = sim::to_us(env.now() - t0) / iters;
    env.win_free(win);
  });
}

double pscw_us(unsigned mode_assert) {
  return bench::run_metric(csp_spec(), [mode_assert](mpi::Env& env,
                                                     double* out) {
    mpi::Comm w = env.world();
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    const int iters = 64;
    env.barrier(w);
    const sim::Time t0 = env.now();
    for (int i = 0; i < iters; ++i) {
      // With NOCHECK the user must order post before start; our barrier
      // provides that ordering.
      if (mode_assert & mpi::kModeNoCheck) env.barrier(w);
      if (env.rank(w) == 0) {
        env.win_start(mpi::Group({1}), mode_assert, win);
        double v = 1.0;
        env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
        env.win_complete(win);
      } else {
        env.win_post(mpi::Group({0}), mode_assert, win);
        env.win_wait(win);
      }
    }
    if (env.rank(w) == 0) *out = sim::to_us(env.now() - t0) / iters;
    env.win_free(win);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Ablation",
                 "what the MPI asserts and info hints buy under Casper");

  report::Table t({"configuration", "per_epoch(us)"});
  t.row({"fence, no asserts", report::fmt(fence_us(0, 0, nullptr), 2)});
  t.row({"fence, NOPRECEDE on first",
         report::fmt(fence_us(mpi::kModeNoPrecede, 0, nullptr), 2)});
  t.row({"fence, NOSTORE|NOPUT|NOPRECEDE every epoch",
         report::fmt(fence_us(mpi::kModeNoPrecede,
                              mpi::kModeNoStore | mpi::kModeNoPut |
                                  mpi::kModeNoPrecede,
                              nullptr),
                     2)});
  t.row({"fence, epochs_used=fence hint",
         report::fmt(fence_us(0, 0, "fence"), 2)});
  t.row({"pscw, no asserts", report::fmt(pscw_us(0), 2)});
  t.row({"pscw, NOCHECK", report::fmt(pscw_us(mpi::kModeNoCheck), 2)});
  t.print(std::cout, csv);
  std::cout << "expectation: the all-assert fence skips barrier+sync and is "
               "much cheaper; NOCHECK drops the post/start handshake.\n";
  return 0;
}
