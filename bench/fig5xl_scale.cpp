// fig5_xl: the Fig. 5 communication shape (RMA - compute - RMA burst) pushed
// to 10k-100k simulated ranks — the scale demonstration for the sharded
// event engine. All-to-all RMA is O(p^2) messages and a window over the full
// world carries O(p^2) lock state, both of which are the *simulated MPI's*
// scaling limits, not the engine's; so the XL variant keeps the per-rank
// work fixed: ranks are tiled into 64-rank communicators, each rank drives a
// fixed-degree-8 neighbor exchange inside its tile (1 accumulate + a 4-put
// burst per neighbor per iteration, 100 us compute between), plus a
// tile-stride p2p ring over the world that deliberately crosses node — and
// therefore shard — boundaries every iteration. Runs in original-MPI mode:
// the Casper ghost layer's per-window origin state is itself O(p^2) at full
// world scale (faithful to the paper's target sizes, which top out at 256).
//
// Sweeps engine shards {1,2,4,8} per rank count and emits BENCH_fig5xl.json.
// The virtual iteration time is a deterministic simulation fact and must be
// IDENTICAL for every shard count (conservative-lookahead invariant); the
// bench exits nonzero if it is not. Host wall-clock and ops/sec are
// informational (single-core hosts serialize the shards).
//
// Usage: fig5xl_scale [--out PATH] [--full] [--iters N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kTile = 64;    // ranks per RMA tile communicator
constexpr int kDegree = 8;   // neighbors each rank targets inside its tile
constexpr int kBurst = 4;    // puts per neighbor in the second phase
constexpr int kUserCpn = 8;  // processes per simulated node

/// One config: avg virtual iteration time (us) on rank 0, host wall ms.
struct Row {
  int nranks = 0;
  int shards = 0;
  double virt_iter_us = 0;
  double host_ms = 0;
  double ops_per_sec = 0;
};

Row run_config(int nranks, int shards, int iters) {
  RunSpec s;
  s.mode = Mode::Original;
  s.profile = net::cray_xc30_regular();
  s.nodes = nranks / kUserCpn;
  s.user_cpn = kUserCpn;
  s.shards = shards;

  double virt_us = 0;
  const auto t0 = Clock::now();
  bench::run(s, [iters, &virt_us](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    mpi::Comm tile = env.comm_split(w, me / kTile, me);
    const int tn = env.size(tile);
    const int tr = env.rank(tile);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(
        static_cast<std::size_t>(tn) * sizeof(double), sizeof(double),
        mpi::Info{}, tile, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time start = env.now();
    double v = 1.0;
    double ring = 0.0;
    for (int it = 0; it < iters; ++it) {
      // Phase 1: one software-path accumulate per neighbor.
      for (int k = 1; k <= kDegree; ++k) {
        env.accumulate(&v, 1, (tr + k) % tn, static_cast<std::size_t>(tr),
                       mpi::AccOp::Sum, win);
      }
      env.win_flush_all(win);
      env.compute(sim::us(100));
      // Phase 2: a put burst per neighbor.
      for (int k = 1; k <= kDegree; ++k) {
        for (int b = 0; b < kBurst; ++b) {
          env.put(&v, 1, (tr + k) % tn, static_cast<std::size_t>(tr), win);
        }
      }
      env.win_flush_all(win);
      // Tile-stride ring over the WORLD: tiles are node-aligned, so this hop
      // crosses node (and shard) boundaries — the cross-shard traffic the
      // conservative lookahead has to order.
      mpi::Request reqs[2];
      reqs[0] = env.irecv(&ring, 1, mpi::Dt::Double, (me + p - kTile) % p,
                          7, w);
      reqs[1] = env.isend(&v, 1, mpi::Dt::Double, (me + kTile) % p, 7, w);
      env.waitall(reqs, 2);
      env.barrier(w);
    }
    const sim::Time end = env.now();
    env.win_unlock_all(win);
    env.win_free(win);
    if (me == 0) virt_us = sim::to_us(end - start) / iters;
  });

  Row r;
  r.nranks = nranks;
  r.shards = shards;
  r.virt_iter_us = virt_us;
  r.host_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const double rma_ops = static_cast<double>(nranks) * kDegree *
                         (1 + kBurst) * iters;
  r.ops_per_sec = rma_ops / (r.host_ms / 1000.0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const int iters = bench::int_flag(argc, argv, "--iters", 2);
  const char* outflag = bench::flag_value(argc, argv, "--out");
  const std::string out = outflag != nullptr ? outflag : "BENCH_fig5xl.json";

  // 10k ranks by default; --full adds the 100k point (the fiber stacks alone
  // are ~2 GB of address space there — minutes, not seconds).
  std::vector<int> rank_counts = {10240};
  if (full) rank_counts.push_back(102400);
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  std::printf("fig5_xl: tiled neighbor exchange, tile=%d degree=%d iters=%d\n",
              kTile, kDegree, iters);
  std::string json = "{\n  \"bench\": \"fig5xl\",\n";
  {
    char line[160];
    std::snprintf(line, sizeof line,
                  "  \"tile\": %d, \"degree\": %d, \"burst\": %d, "
                  "\"iters\": %d,\n  \"host_cpus\": %u,\n  \"rows\": [\n",
                  kTile, kDegree, kBurst, iters,
                  std::thread::hardware_concurrency());
    json += line;
  }

  bool determinism_ok = true;
  for (std::size_t ri = 0; ri < rank_counts.size(); ++ri) {
    const int n = rank_counts[ri];
    double virt_ref = 0;
    for (std::size_t si = 0; si < shard_counts.size(); ++si) {
      const Row r = run_config(n, shard_counts[si], iters);
      std::printf(
          "nranks=%6d shards=%d  virt_iter=%.3f us  host=%.0f ms  "
          "rma_ops/sec=%.3e\n",
          r.nranks, r.shards, r.virt_iter_us, r.host_ms, r.ops_per_sec);
      if (si == 0) {
        virt_ref = r.virt_iter_us;
      } else if (r.virt_iter_us != virt_ref) {
        std::fprintf(stderr,
                     "fig5_xl: DETERMINISM VIOLATION: nranks=%d shards=%d "
                     "virt=%.9f != shards=1 virt=%.9f\n",
                     n, r.shards, r.virt_iter_us, virt_ref);
        determinism_ok = false;
      }
      char line[256];
      std::snprintf(line, sizeof line,
                    "    {\"nranks\": %d, \"shards\": %d, "
                    "\"virt_iter_us\": %.3f, \"host_ms\": %.1f, "
                    "\"rma_ops_per_sec\": %.1f}%s\n",
                    r.nranks, r.shards, r.virt_iter_us, r.host_ms,
                    r.ops_per_sec,
                    ri + 1 < rank_counts.size() ||
                            si + 1 < shard_counts.size()
                        ? ","
                        : "");
      json += line;
    }
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig5xl_scale: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  if (!full) std::printf("(10k ranks; pass --full to add the 100k point)\n");
  return determinism_ok ? 0 : 1;
}
