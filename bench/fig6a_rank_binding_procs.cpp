// Fig. 6(a): static rank binding with increasing process count (16 user
// processes per node): each process sends one accumulate to every other
// process. More ghost processes per node help once the incoming software
// operation rate exceeds what fewer ghosts can serve.
#include <iostream>

#include "fig6_common.hpp"
#include "report/json.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  report::banner(std::cout, "Fig 6(a)",
                 "static rank binding, increasing processes "
                 "(16 users/node, 1 acc to every peer)");

  // 16 user processes per node in every series; Casper runs dedicate g
  // additional cores per node to ghosts (the paper's CSP_NG knob).
  const int users_per_node = 16;
  report::Table t({"procs", "original(ms)", "casper_2g(ms)", "casper_4g(ms)",
                   "casper_8g(ms)", "speedup_8g"});
  const int max_p = full ? 1024 : 256;
  for (int p = 64; p <= max_p; p *= 2) {
    auto spec = [&](Mode m, int ghosts) {
      RunSpec s;
      s.mode = m;
      s.profile = net::cray_xc30_regular();
      s.nodes = p / users_per_node;
      s.user_cpn = users_per_node;
      s.ghosts = ghosts;
      s.binding = core::Binding::Rank;
      return s;
    };
    const double orig = bench::fig6_alltoall_acc_us(spec(Mode::Original, 0), 1);
    const double g2 = bench::fig6_alltoall_acc_us(spec(Mode::Casper, 2), 1);
    const double g4 = bench::fig6_alltoall_acc_us(spec(Mode::Casper, 4), 1);
    const double g8 = bench::fig6_alltoall_acc_us(spec(Mode::Casper, 8), 1);
    t.row({report::fmt_count(static_cast<std::uint64_t>(p)),
           report::fmt(orig / 1000.0, 2), report::fmt(g2 / 1000.0, 2),
           report::fmt(g4 / 1000.0, 2), report::fmt(g8 / 1000.0, 2),
           report::fmt(orig / g8, 2)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: with few processes 2 ghosts suffice; at larger "
               "scale more ghosts keep up with the higher incoming "
               "accumulate rate and win.\n";
  if (!full) std::cout << "(reduced scale; pass --full for up to 1024)\n";

  // --json: write BENCH_fig6a.json for the perf-regression gate. The rows
  // are virtual time (exact-match against the baseline); the host block is
  // the wall-clock of the p=64 casper_8g run, best-of-5; the metrics block
  // comes from a separate instrumented p=64 run (instrumentation is never
  // inside the timed loop).
  if (bench::has_flag(argc, argv, "--json")) {
    auto spec64 = [&](Mode m, int ghosts) {
      RunSpec s;
      s.mode = m;
      s.profile = net::cray_xc30_regular();
      s.nodes = 64 / users_per_node;
      s.user_cpn = users_per_node;
      s.ghosts = ghosts;
      s.binding = core::Binding::Rank;
      return s;
    };
    const int kRuns = 5;
    const double sweep_ms = bench::host_best_of_ms(kRuns, [&] {
      bench::fig6_alltoall_acc_us(spec64(Mode::Casper, 8), 1);
    });
    obs::Recorder rec;
    RunSpec s = spec64(Mode::Casper, 8);
    s.recorder = &rec;
    bench::fig6_alltoall_acc_us(s, 1);
    if (!report::write_bench_json_file(
            "BENCH_fig6a.json", "fig6a", t, &rec.metrics(),
            bench::host_block_json(sweep_ms, kRuns))) {
      std::cerr << "fig6a: cannot write BENCH_fig6a.json\n";
      return 1;
    }
  }
  return 0;
}
