// Fig. 5(b): PUT scalability on the Cray XC30 model, one process per node.
//
// Under DMAPP, contiguous PUT executes in hardware, so DMAPP and Casper
// coincide (Casper must not slow the hardware path down); regular-mode
// original MPI stalls, and the thread mode adds overhead to every call.
#include <iostream>

#include "fig5_common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const bool full = bench::has_flag(argc, argv, "--full");
  // Engine shards: virtual-time results are shard-count invariant, so the
  // figure is identical for any value; >1 uses host worker threads.
  const int shards = bench::int_flag(argc, argv, "--shards", 1);
  report::banner(std::cout, "Fig 5(b)",
                 "put scalability on Cray XC30 (ppn=1)");

  report::Table t({"procs", "original(ms)", "thread(ms)", "dmapp(ms)",
                   "casper_dmapp(ms)"});
  // Default scale covers 2..128 procs now that rank switches are user-level
  // fiber swaps; --full runs the paper's 2..256 sweep.
  const int max_p = full ? 256 : 128;
  for (int p = 2; p <= max_p; p *= 2) {
    auto spec = [&](Mode m) {
      RunSpec s;
      s.mode = m;
      s.profile = net::cray_xc30_regular();
      s.nodes = p;
      s.user_cpn = 1;
      s.shards = shards;
      return s;
    };
    // Casper on the DMAPP-capable network: hardware PUTs are redirected to
    // ghost targets but still execute in hardware.
    RunSpec csp = spec(Mode::Casper);
    csp.profile = net::cray_xc30_dmapp();
    t.row({report::fmt_count(static_cast<std::uint64_t>(p)),
           report::fmt(
               bench::fig5_avg_iter_us(spec(Mode::Original), true) / 1000.0,
               3),
           report::fmt(
               bench::fig5_avg_iter_us(spec(Mode::Thread), true) / 1000.0, 3),
           report::fmt(
               bench::fig5_avg_iter_us(spec(Mode::Dmapp), true) / 1000.0, 3),
           report::fmt(bench::fig5_avg_iter_us(csp, true) / 1000.0, 3)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: dmapp and casper coincide (hardware PUT, no "
               "target involvement); original (software PUT in regular mode) "
               "stalls; thread adds per-call overhead.\n";
  if (!full) std::cout << "(reduced scale 2..128; pass --full for 2..256 procs)\n";
  return 0;
}
