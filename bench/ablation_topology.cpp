// Ablation (paper II.A design choice): topology-aware ghost placement and
// binding. With NUMA-aware placement each user is bound to a ghost in its
// own memory domain; without it, ghosts cluster at the end of the node and
// most redirected operations pay the cross-domain memory penalty.
#include <iostream>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

double heavy_acc_us(bool topo_aware) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 10;  // 8 users + 2 ghosts
  rc.machine.topo.numa_per_node = 2;

  core::Config cc;
  cc.ghosts_per_node = 2;
  cc.topology_aware = topo_aware;

  double out = 0;
  mpi::exec(rc, [&out](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int p = env.size(w);
    const int me = env.rank(w);
    const int elems = 256;  // 2 KB accumulates: the per-byte term matters
    void* base = nullptr;
    mpi::Win win = env.win_allocate(
        static_cast<std::size_t>(elems) * sizeof(double), sizeof(double),
        mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    const sim::Time t0 = env.now();
    std::vector<double> v(static_cast<std::size_t>(elems), 1.0);
    for (int round = 0; round < 16; ++round) {
      for (int t = 0; t < p; ++t) {
        if (t == me) continue;
        env.accumulate(v.data(), elems, t, 0, mpi::AccOp::Sum, win);
      }
    }
    env.win_flush_all(win);
    env.barrier(w);
    const double us = sim::to_us(env.now() - t0);
    double us_max = 0;
    env.allreduce(&us, &us_max, 1, mpi::Dt::Double, mpi::AccOp::Max, w);
    env.win_unlock_all(win);
    if (me == 0) out = us_max;
    env.win_free(win);
  }, core::layer(cc));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Ablation",
                 "topology-aware ghost placement (2 NUMA domains, 8 users + "
                 "2 ghosts per node, 2KB accumulates)");
  report::Table t({"placement", "time(ms)"});
  const double aware = heavy_acc_us(true);
  const double naive = heavy_acc_us(false);
  t.row({"topology-aware (1 ghost per domain)",
         report::fmt(aware / 1000.0, 2)});
  t.row({"naive (ghosts at end of node)", report::fmt(naive / 1000.0, 2)});
  t.row({"benefit", report::fmt(naive / aware, 2) + "x"});
  t.print(std::cout, csv);
  std::cout << "expectation: NUMA-aware placement binds each user to a ghost "
               "in its own domain, avoiding the cross-domain memory penalty "
               "on every redirected operation.\n";
  return 0;
}
