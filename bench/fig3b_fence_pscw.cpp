// Fig. 3(b): overhead of Casper's fence and PSCW epoch translation vs. the
// number of operations per epoch, between two interconnected processes.
//
// Fence experiment: rank 0 executes fence(NOPRECEDE) - n x accumulate -
// fence(NOSUCCEED); rank 1 executes the matching empty fences. PSCW: rank 0
// start - n x accumulate - complete; rank 1 post - wait. The overhead of the
// passive-target translation (flush_all + barrier + win_sync / send-recv
// sync) is large in relative terms for small n and amortizes away as n
// grows.
#include <iostream>

#include "common.hpp"

using namespace casper;
using bench::Mode;
using bench::RunSpec;

namespace {

double fence_time_us(const RunSpec& spec, int nops) {
  return bench::run_metric(spec, [nops](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    env.barrier(w);
    const sim::Time t0 = env.now();
    env.win_fence(mpi::kModeNoPrecede, win);
    if (env.rank(w) == 0) {
      double v = 1.0;
      for (int i = 0; i < nops; ++i) {
        env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
      }
    }
    env.win_fence(mpi::kModeNoSucceed, win);
    if (env.rank(w) == 0) *out = sim::to_us(env.now() - t0);
    env.win_free(win);
  });
}

double pscw_time_us(const RunSpec& spec, int nops) {
  return bench::run_metric(spec, [nops](mpi::Env& env, double* out) {
    mpi::Comm w = env.world();
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    env.barrier(w);
    const sim::Time t0 = env.now();
    if (env.rank(w) == 0) {
      env.win_start(mpi::Group({1}), 0, win);
      double v = 1.0;
      for (int i = 0; i < nops; ++i) {
        env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
      }
      env.win_complete(win);
      *out = sim::to_us(env.now() - t0);
    } else if (env.rank(w) == 1) {
      env.win_post(mpi::Group({0}), 0, win);
      env.win_wait(win);
    }
    env.barrier(w);
    env.win_free(win);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  report::banner(std::cout, "Fig 3(b)",
                 "fence and PSCW translation overhead vs. ops "
                 "(2 processes, Cray XC30 model)");

  RunSpec orig;
  orig.mode = Mode::Original;
  orig.profile = net::cray_xc30_regular();
  orig.nodes = 2;
  orig.user_cpn = 1;

  RunSpec csp = orig;
  csp.mode = Mode::Casper;
  csp.ghosts = 1;

  report::Table t({"ops", "orig_fence(us)", "casper_fence(us)",
                   "fence_ovh(%)", "orig_pscw(us)", "casper_pscw(us)",
                   "pscw_ovh(%)"});
  for (int n = 2; n <= 8192; n *= 2) {
    const double of = fence_time_us(orig, n);
    const double cf = fence_time_us(csp, n);
    const double op = pscw_time_us(orig, n);
    const double cp = pscw_time_us(csp, n);
    t.row({report::fmt_count(static_cast<std::uint64_t>(n)),
           report::fmt(of, 1), report::fmt(cf, 1),
           report::fmt(100.0 * (cf - of) / of, 1), report::fmt(op, 1),
           report::fmt(cp, 1), report::fmt(100.0 * (cp - op) / op, 1)});
  }
  t.print(std::cout, csv);
  std::cout << "expectation: overhead is large (tens to ~200%) for few ops "
               "and decays toward zero as the operation count amortizes the "
               "extra synchronization.\n";
  return 0;
}
